#include "src/workload/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bespokv {

const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipfian: return "zipfian";
    case KeyDist::kLatest: return "latest";
    case KeyDist::kHotset: return "hotset";
  }
  return "unknown";
}

namespace {
Result<KeyDist> key_dist_from_name(const std::string& s) {
  if (s == "uniform") return KeyDist::kUniform;
  if (s == "zipfian") return KeyDist::kZipfian;
  if (s == "latest") return KeyDist::kLatest;
  if (s == "hotset") return KeyDist::kHotset;
  return Status::Invalid("workload: unknown key_dist '" + s + "'");
}
}  // namespace

Json WorkloadSpec::to_json() const {
  Json j = Json::object();
  j.set("num_keys", Json::number(double(num_keys)));
  j.set("key_size", Json::number(double(key_size)));
  j.set("value_size", Json::number(double(value_size)));
  j.set("value_size_max", Json::number(double(value_size_max)));
  j.set("get_ratio", Json::number(get_ratio));
  j.set("scan_ratio", Json::number(scan_ratio));
  j.set("del_ratio", Json::number(del_ratio));
  j.set("rmw_ratio", Json::number(rmw_ratio));
  j.set("insert_ratio", Json::number(insert_ratio));
  j.set("zipfian", Json::boolean(key_dist == KeyDist::kZipfian));
  j.set("key_dist", Json::string(key_dist_name(key_dist)));
  j.set("zipf_theta", Json::number(zipf_theta));
  j.set("hot_op_fraction", Json::number(hot_op_fraction));
  j.set("hot_key_fraction", Json::number(hot_key_fraction));
  j.set("scan_span", Json::number(scan_span));
  j.set("ttl_ms", Json::number(double(ttl_ms)));
  j.set("seed", Json::number(double(seed)));
  return j;
}

Result<WorkloadSpec> WorkloadSpec::from_json(const Json& j) {
  WorkloadSpec s;
  s.num_keys = uint64_t(j.get("num_keys").as_number(double(s.num_keys)));
  s.key_size = size_t(j.get("key_size").as_number(double(s.key_size)));
  s.value_size = size_t(j.get("value_size").as_number(double(s.value_size)));
  s.value_size_max =
      size_t(j.get("value_size_max").as_number(double(s.value_size_max)));
  s.get_ratio = j.get("get_ratio").as_number(s.get_ratio);
  s.scan_ratio = j.get("scan_ratio").as_number(s.scan_ratio);
  s.del_ratio = j.get("del_ratio").as_number(s.del_ratio);
  s.rmw_ratio = j.get("rmw_ratio").as_number(s.rmw_ratio);
  s.insert_ratio = j.get("insert_ratio").as_number(s.insert_ratio);
  // Legacy artifacts carry only the bool; key_dist (when present) wins.
  s.zipfian = j.get("zipfian").as_bool(s.zipfian);
  s.key_dist = s.zipfian ? KeyDist::kZipfian : KeyDist::kUniform;
  if (j.get("key_dist").is_string()) {
    auto d = key_dist_from_name(j.get("key_dist").as_string(""));
    if (!d.ok()) return d.status();
    s.key_dist = d.value();
    s.zipfian = s.key_dist == KeyDist::kZipfian;
  }
  s.zipf_theta = j.get("zipf_theta").as_number(s.zipf_theta);
  s.hot_op_fraction = j.get("hot_op_fraction").as_number(s.hot_op_fraction);
  s.hot_key_fraction = j.get("hot_key_fraction").as_number(s.hot_key_fraction);
  s.scan_span = uint32_t(j.get("scan_span").as_number(s.scan_span));
  s.ttl_ms = uint32_t(j.get("ttl_ms").as_number(double(s.ttl_ms)));
  s.seed = uint64_t(j.get("seed").as_number(double(s.seed)));
  if (s.num_keys == 0) return Status::Invalid("workload: num_keys must be > 0");
  if (s.get_ratio < 0 || s.scan_ratio < 0 || s.del_ratio < 0 ||
      s.rmw_ratio < 0 || s.insert_ratio < 0 ||
      s.get_ratio + s.scan_ratio + s.del_ratio + s.rmw_ratio + s.insert_ratio >
          1.0 + 1e-9) {
    return Status::Invalid("workload: op ratios must be >= 0 and sum <= 1");
  }
  if (s.value_size_max != 0 && s.value_size_max < s.value_size) {
    return Status::Invalid("workload: value_size_max < value_size");
  }
  if (s.hot_op_fraction < 0 || s.hot_op_fraction > 1 ||
      s.hot_key_fraction <= 0 || s.hot_key_fraction > 1) {
    return Status::Invalid("workload: hot-set fractions out of range");
  }
  return s;
}

// --- YCSB core suite (A–F). All use the repo-standard 16B/32B records; the
// canonical mixes are from the YCSB core-workload definitions.

WorkloadSpec WorkloadSpec::ycsb_a() {
  WorkloadSpec s;
  s.get_ratio = 0.50;  // 50% read / 50% update
  s.zipfian = true;
  s.key_dist = KeyDist::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_b() {
  WorkloadSpec s;
  s.get_ratio = 0.95;  // 95% read / 5% update
  s.zipfian = true;
  s.key_dist = KeyDist::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_c() {
  WorkloadSpec s;
  s.get_ratio = 1.0;  // read-only
  s.zipfian = true;
  s.key_dist = KeyDist::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_d() {
  WorkloadSpec s;
  s.get_ratio = 0.95;    // read-latest
  s.insert_ratio = 0.05;
  s.key_dist = KeyDist::kLatest;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_e() {
  WorkloadSpec s;
  s.get_ratio = 0.0;
  s.scan_ratio = 0.95;  // short ranges
  s.insert_ratio = 0.05;
  s.zipfian = true;
  s.key_dist = KeyDist::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_f() {
  WorkloadSpec s;
  s.get_ratio = 0.50;  // 50% read / 50% read-modify-write
  s.rmw_ratio = 0.50;
  s.zipfian = true;
  s.key_dist = KeyDist::kZipfian;
  return s;
}

Result<WorkloadSpec> WorkloadSpec::ycsb(char mix) {
  switch (mix) {
    case 'A': case 'a': return ycsb_a();
    case 'B': case 'b': return ycsb_b();
    case 'C': case 'c': return ycsb_c();
    case 'D': case 'd': return ycsb_d();
    case 'E': case 'e': return ycsb_e();
    case 'F': case 'f': return ycsb_f();
  }
  return Status::Invalid(std::string("workload: no YCSB mix '") + mix + "'");
}

WorkloadSpec WorkloadSpec::ycsb_read_mostly(bool zipf) {
  WorkloadSpec s;
  s.get_ratio = 0.95;
  s.zipfian = zipf;
  s.key_dist = zipf ? KeyDist::kZipfian : KeyDist::kUniform;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_update_heavy(bool zipf) {
  WorkloadSpec s;
  s.get_ratio = 0.50;
  s.zipfian = zipf;
  s.key_dist = zipf ? KeyDist::kZipfian : KeyDist::kUniform;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_scan_heavy(bool zipf) {
  WorkloadSpec s;
  s.get_ratio = 0.0;
  s.scan_ratio = 0.95;
  s.zipfian = zipf;
  s.key_dist = zipf ? KeyDist::kZipfian : KeyDist::kUniform;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_job_launch() {
  // Control messages from servers = Get, compute-node results = Put (§VIII-A).
  WorkloadSpec s;
  s.num_keys = 100'000;
  s.get_ratio = 0.50;
  s.zipfian = true;  // rank/step keys are heavily reused
  s.key_dist = KeyDist::kZipfian;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_io_forwarding() {
  // SeaweedFS metadata trace: 62:38 Get:Put over file-metadata keys.
  WorkloadSpec s;
  s.num_keys = 10'000;
  s.get_ratio = 0.62;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_monitoring() {
  // Lustre MDS/OSS/OST/MDT stats streams: put-dominated time series (§VI-A).
  WorkloadSpec s;
  s.num_keys = 2'000'000;
  s.get_ratio = 0.05;
  s.value_size = 64;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_analytics() {
  // "completely read-intensive with uniform distribution" (§VI-A).
  WorkloadSpec s;
  s.num_keys = 2'000'000;
  s.get_ratio = 1.0;
  s.value_size = 64;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::dl_ingest(size_t image_bytes) {
  // Training ingest: whole dataset streamed repeatedly, read-mostly (§VI-B).
  WorkloadSpec s;
  s.num_keys = 50'000;
  s.value_size = image_bytes;
  s.get_ratio = 1.0;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::cache_tier(uint32_t ttl_ms) {
  // Memcached-style session cache: hot-set skew, every write TTL'd, mixed
  // payload sizes so eviction pressure is uneven.
  WorkloadSpec s;
  s.num_keys = 100'000;
  s.get_ratio = 0.50;
  s.key_dist = KeyDist::kHotset;
  s.value_size = 32;
  s.value_size_max = 256;
  s.ttl_ms = ttl_ms;
  return s;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, uint64_t stream_id)
    : spec_(spec),
      rng_(spec.seed * 0x9e3779b9ULL + stream_id + 1),
      population_(spec.num_keys) {
  if (spec_.zipfian && spec_.key_dist == KeyDist::kUniform) {
    spec_.key_dist = KeyDist::kZipfian;  // legacy bool set directly
  }
  if (spec_.key_dist == KeyDist::kZipfian ||
      spec_.key_dist == KeyDist::kLatest) {
    zipf_ = std::make_unique<ZipfianGenerator>(spec_.num_keys, spec_.zipf_theta,
                                               spec_.seed + stream_id * 131);
  }
}

std::string WorkloadGenerator::key_at(uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%0*llu",
                static_cast<int>(spec_.key_size > 1 ? spec_.key_size - 1 : 1),
                static_cast<unsigned long long>(index));
  return std::string(buf).substr(0, spec_.key_size);
}

std::string WorkloadGenerator::value_for(uint64_t index) {
  std::string v(next_value_size(), 'x');
  // Stamp a recognizable header so correctness checks can verify values.
  const int n = std::snprintf(v.data(), v.size(), "v%llu|",
                              static_cast<unsigned long long>(index));
  if (n > 0 && static_cast<size_t>(n) < v.size()) v[v.size() - 1] = '.';
  return v;
}

size_t WorkloadGenerator::next_value_size() {
  if (spec_.value_size_max <= spec_.value_size) return spec_.value_size;
  return spec_.value_size +
         rng_.next_u64(spec_.value_size_max - spec_.value_size + 1);
}

uint64_t WorkloadGenerator::next_index() {
  switch (spec_.key_dist) {
    case KeyDist::kUniform:
      return rng_.next_u64(population_);
    case KeyDist::kZipfian:
      return zipf_->next();
    case KeyDist::kLatest: {
      // YCSB D: popularity decays with age — zipfian over recency rank, so
      // rank 0 is the most recently inserted key.
      const uint64_t rank = zipf_->next_rank();
      return rank >= population_ ? 0 : population_ - 1 - rank;
    }
    case KeyDist::kHotset: {
      uint64_t hot = std::max<uint64_t>(
          1, uint64_t(double(population_) * spec_.hot_key_fraction));
      if (rng_.next_bool(spec_.hot_op_fraction)) return rng_.next_u64(hot);
      if (hot >= population_) return rng_.next_u64(population_);
      return hot + rng_.next_u64(population_ - hot);
    }
  }
  return rng_.next_u64(population_);
}

WorkloadOp WorkloadGenerator::next() {
  WorkloadOp op;
  const double p = rng_.next_double();
  double c = spec_.get_ratio;
  if (p < c) {
    op.type = OpType::kGet;
    op.key = key_at(next_index());
    return op;
  }
  c += spec_.scan_ratio;
  if (p < c) {
    const uint64_t idx = next_index();
    op.type = OpType::kScan;
    op.key = key_at(idx);
    op.scan_end = key_at(std::min(idx + spec_.scan_span, population_));
    op.scan_limit = spec_.scan_span;
    return op;
  }
  c += spec_.del_ratio;
  if (p < c) {
    op.type = OpType::kDel;
    op.key = key_at(next_index());
    return op;
  }
  c += spec_.rmw_ratio;
  if (p < c) {
    const uint64_t idx = next_index();
    op.type = OpType::kRmw;
    op.key = key_at(idx);
    op.value = value_for(idx);
    op.ttl_ms = spec_.ttl_ms;
    return op;
  }
  c += spec_.insert_ratio;
  uint64_t idx;
  if (p < c) {
    idx = population_++;  // brand-new key extends the keyspace
  } else {
    idx = next_index();
  }
  op.type = OpType::kPut;
  op.key = key_at(idx);
  op.value = value_for(idx);
  op.ttl_ms = spec_.ttl_ms;
  return op;
}

// --- Arrival processes -----------------------------------------------------

double ArrivalSpec::mean_rate_per_sec() const {
  if (kind == Kind::kPoisson) return rate_per_sec;
  const double calm = calm_dwell_ms, burst = burst_dwell_ms;
  if (calm + burst <= 0) return rate_per_sec;
  return (rate_per_sec * calm + rate_per_sec * burst_multiplier * burst) /
         (calm + burst);
}

Json ArrivalSpec::to_json() const {
  Json j = Json::object();
  j.set("kind", Json::string(kind == Kind::kPoisson ? "poisson" : "mmpp"));
  j.set("rate_per_sec", Json::number(rate_per_sec));
  j.set("burst_multiplier", Json::number(burst_multiplier));
  j.set("calm_dwell_ms", Json::number(calm_dwell_ms));
  j.set("burst_dwell_ms", Json::number(burst_dwell_ms));
  j.set("seed", Json::number(double(seed)));
  return j;
}

Result<ArrivalSpec> ArrivalSpec::from_json(const Json& j) {
  ArrivalSpec s;
  const std::string kind = j.get("kind").as_string("poisson");
  if (kind == "poisson") {
    s.kind = Kind::kPoisson;
  } else if (kind == "mmpp") {
    s.kind = Kind::kMmpp;
  } else {
    return Status::Invalid("arrival: unknown kind '" + kind + "'");
  }
  s.rate_per_sec = j.get("rate_per_sec").as_number(s.rate_per_sec);
  s.burst_multiplier = j.get("burst_multiplier").as_number(s.burst_multiplier);
  s.calm_dwell_ms = j.get("calm_dwell_ms").as_number(s.calm_dwell_ms);
  s.burst_dwell_ms = j.get("burst_dwell_ms").as_number(s.burst_dwell_ms);
  s.seed = uint64_t(j.get("seed").as_number(double(s.seed)));
  if (s.rate_per_sec <= 0) return Status::Invalid("arrival: rate must be > 0");
  if (s.burst_multiplier < 1) {
    return Status::Invalid("arrival: burst_multiplier must be >= 1");
  }
  return s;
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec)
    : spec_(spec), rng_(spec.seed * 0x2545F4914F6CDD1DULL + 17) {
  if (spec_.kind == ArrivalSpec::Kind::kMmpp) {
    state_left_us_ = exp_us(1000.0 / std::max(1e-9, spec_.calm_dwell_ms));
  }
}

double ArrivalProcess::exp_us(double rate_per_sec) {
  // Exponential with mean 1e6/rate microseconds; clamp u away from 0.
  const double u = std::max(rng_.next_double(), 1e-12);
  return -std::log(u) * 1e6 / rate_per_sec;
}

uint64_t ArrivalProcess::next_gap_us() {
  if (spec_.kind == ArrivalSpec::Kind::kPoisson) {
    return static_cast<uint64_t>(std::llround(exp_us(spec_.rate_per_sec)));
  }
  // MMPP: walk the state machine until the sampled gap lands inside the
  // current state's remaining sojourn (gaps never straddle a rate change —
  // a standard and adequate approximation for a DES driver).
  double gap = 0;
  for (;;) {
    const double rate = in_burst_
                            ? spec_.rate_per_sec * spec_.burst_multiplier
                            : spec_.rate_per_sec;
    const double g = exp_us(rate);
    if (g <= state_left_us_) {
      state_left_us_ -= g;
      gap += g;
      return static_cast<uint64_t>(std::llround(gap));
    }
    gap += state_left_us_;
    in_burst_ = !in_burst_;
    const double dwell_ms =
        in_burst_ ? spec_.burst_dwell_ms : spec_.calm_dwell_ms;
    state_left_us_ = exp_us(1000.0 / std::max(1e-9, dwell_ms));
  }
}

}  // namespace bespokv
