// Shared log service (ZLog/CORFU substitute; Table III Shared Log API).
//
// A single sequencer+storage node provides a totally ordered, durable-ish
// append log. AA+EC controlets append Puts here to obtain a global order
// and asynchronously fetch entries appended by their peers (Fig. 15c). The
// AA+EC -> MS+EC transition (§V-B) drains in-flight entries from this log.
//
// Entries are (seq, table/key/value/op) tuples; readers pull batches with
// kLogRead {seq=from, limit=n}. Trimming drops a prefix once every consumer
// has applied it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/net/runtime.h"
#include "src/proto/message.h"

namespace bespokv {

class SharedLogService : public Service {
 public:
  void handle(const Addr& from, Message req, Replier reply) override;

  uint64_t tail() const { return next_seq_; }
  uint64_t trimmed_to() const { return base_; }
  size_t entries_held() const { return entries_.size(); }
  // Appends rejected because the appender's epoch was behind the shard's
  // fence (ratcheted by coordinator kReconfigure pushes on failover).
  uint64_t fence_rejects() const { return fence_rejects_; }

 private:
  struct LogEntry {
    Op op;             // kPut or kDel
    uint32_t shard;    // shards share the log; readers filter by shard id
    std::string table;
    std::string key;
    std::string value;
  };

  // Log positions are 1-based; base_ is the first retained position.
  std::deque<LogEntry> entries_;
  // Per-shard epoch fence: a deposed/retired active's appends die here even
  // though it can still reach the sequencer (the log is the AA+EC write
  // serialization point, so this is where split-brain must be stopped).
  std::map<uint32_t, uint64_t> fence_;
  uint64_t base_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t fence_rejects_ = 0;
};

// Client-side wrapper (Table III: PutSharedLog / AsyncFetch).
class SharedLogClient {
 public:
  SharedLogClient(Runtime* rt, Addr log_addr)
      : rt_(rt), addr_(std::move(log_addr)) {}

  // Appends one write for `shard`; `done` receives the assigned global seq.
  // `epoch` stamps the append for the log's per-shard fence: an append
  // minted under an epoch older than the shard's fence is refused with
  // kConflict (0 = unfenced legacy caller).
  void append(const Message& write, uint32_t shard,
              std::function<void(Status, uint64_t seq)> done,
              uint64_t epoch = 0);

  // Fetches this shard's entries with seq >= from (up to `limit`). The reply
  // carries entries in kvs (kv.seq = log position, kv.key pre-prefixed with
  // the table), op markers "P"/"D" in strs, the scan-resume position in
  // epoch, and the log tail in seq.
  void fetch(uint64_t from, uint32_t shard, uint32_t limit,
             std::function<void(Status, Message)> done);

  void trim(uint64_t up_to);
  void tail(std::function<void(Status, uint64_t)> done);

  const Addr& addr() const { return addr_; }

 private:
  Runtime* rt_;
  Addr addr_;
};

}  // namespace bespokv
