#include "src/sharedlog/sharedlog.h"

#include <algorithm>

#include "src/common/fencing.h"

namespace bespokv {

void SharedLogService::handle(const Addr& from, Message req, Replier reply) {
  (void)from;
  switch (req.op) {
    case Op::kLogCreate: {
      entries_.clear();
      base_ = next_seq_ = 1;
      reply(Message::reply(Code::kOk));
      return;
    }
    case Op::kReconfigure: {
      // Coordinator fence push (sent on depose / transition completion
      // only): ratchet the shard's epoch floor. Never lowered.
      uint64_t& floor = fence_[req.shard];
      floor = std::max(floor, req.epoch);
      reply(Message::reply(Code::kOk));
      return;
    }
    case Op::kLogAppend: {
      if (fencing_enabled() && req.epoch != 0) {
        auto fit = fence_.find(req.shard);
        if (fit != fence_.end() && req.epoch < fit->second) {
          // Append minted under a pre-failover epoch: the appender has been
          // deposed/retired and must not extend the global write order.
          ++fence_rejects_;
          reply(Message::reply(Code::kConflict, "stale epoch"));
          return;
        }
      }
      LogEntry e;
      e.op = (req.flags & kFlagDelete) != 0 ? Op::kDel : Op::kPut;
      e.shard = req.shard;
      e.table = req.table;
      e.key = req.key;
      e.value = req.value;
      entries_.push_back(std::move(e));
      Message rep = Message::reply(Code::kOk);
      rep.seq = next_seq_++;
      reply(std::move(rep));
      return;
    }
    case Op::kLogRead: {
      Message rep = Message::reply(Code::kOk);
      const uint64_t from_seq = std::max(req.seq, base_);
      if (req.seq < base_) {
        // The caller asked for trimmed history; surface it so recovery can
        // fall back to a full snapshot instead of silently missing writes.
        rep.code = Code::kOutOfRange;
        rep.seq = base_;
        reply(std::move(rep));
        return;
      }
      const uint32_t limit = req.limit == 0 ? 1024 : req.limit;
      uint64_t s = from_seq;
      for (; s < next_seq_ && rep.kvs.size() < limit; ++s) {
        const LogEntry& e = entries_[static_cast<size_t>(s - base_)];
        if (e.shard != req.shard) continue;
        KV kv;
        kv.key = e.table.empty() ? e.key : e.table + "\x1f" + e.key;
        kv.value = e.value;
        kv.seq = s;
        rep.kvs.push_back(std::move(kv));
        rep.strs.push_back(e.op == Op::kDel ? "D" : "P");
      }
      rep.epoch = s;        // resume position for the next fetch
      rep.seq = next_seq_;  // current tail, so readers know how far behind
      reply(std::move(rep));
      return;
    }
    case Op::kLogTail: {
      Message rep = Message::reply(Code::kOk);
      rep.seq = next_seq_;
      reply(std::move(rep));
      return;
    }
    case Op::kLogTrim: {
      const uint64_t up_to = std::min(req.seq, next_seq_);
      while (base_ < up_to && !entries_.empty()) {
        entries_.pop_front();
        ++base_;
      }
      reply(Message::reply(Code::kOk));
      return;
    }
    default:
      reply(Message::reply(Code::kInvalid));
  }
}

void SharedLogClient::append(const Message& write, uint32_t shard,
                             std::function<void(Status, uint64_t)> done,
                             uint64_t epoch) {
  Message req;
  req.op = Op::kLogAppend;
  req.flags = write.op == Op::kDel ? kFlagDelete : 0u;
  req.shard = shard;
  req.epoch = epoch;
  req.table = write.table;
  req.key = write.key;
  req.value = write.value;
  rt_->call(addr_, std::move(req),
            [done = std::move(done)](Status s, Message rep) {
              if (!s.ok()) {
                done(s, 0);
              } else if (rep.code != Code::kOk) {
                done(Status(rep.code), 0);
              } else {
                done(Status::Ok(), rep.seq);
              }
            });
}

void SharedLogClient::fetch(uint64_t from, uint32_t shard, uint32_t limit,
                            std::function<void(Status, Message)> done) {
  Message req;
  req.op = Op::kLogRead;
  req.seq = from;
  req.shard = shard;
  req.limit = limit;
  rt_->call(addr_, std::move(req),
            [done = std::move(done)](Status s, Message rep) {
              done(s, std::move(rep));
            });
}

void SharedLogClient::trim(uint64_t up_to) {
  Message req;
  req.op = Op::kLogTrim;
  req.seq = up_to;
  rt_->send(addr_, std::move(req));
}

void SharedLogClient::tail(std::function<void(Status, uint64_t)> done) {
  Message req;
  req.op = Op::kLogTail;
  rt_->call(addr_, std::move(req),
            [done = std::move(done)](Status s, Message rep) {
              done(s, rep.seq);
            });
}

}  // namespace bespokv
