// Discrete-event core: a virtual clock plus a time-ordered event heap.
// Deterministic: ties in time are broken by insertion sequence, so a given
// seed always produces an identical execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bespokv::sim {

using Task = std::function<void()>;

class EventQueue {
 public:
  uint64_t now_us() const { return now_; }

  // Schedules `fn` at absolute virtual time `at_us` (>= now). Returns an id
  // usable with cancel().
  uint64_t schedule_at(uint64_t at_us, Task fn);
  uint64_t schedule_after(uint64_t delay_us, Task fn) {
    return schedule_at(now_ + delay_us, std::move(fn));
  }

  void cancel(uint64_t id);

  // Runs events until the queue is empty or virtual time would pass
  // `until_us`. Returns the number of events executed.
  uint64_t run_until(uint64_t until_us);
  uint64_t run_all() { return run_until(UINT64_MAX); }

  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }

 private:
  struct Event {
    uint64_t at;
    uint64_t seq;     // total order among same-time events
    uint64_t id;
    Task fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  std::vector<uint64_t> cancelled_;  // sorted ids are overkill; linear set
  uint64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_ = 0;

  bool is_cancelled(uint64_t id);
};

}  // namespace bespokv::sim
