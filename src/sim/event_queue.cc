#include "src/sim/event_queue.h"

#include <algorithm>

namespace bespokv::sim {

uint64_t EventQueue::schedule_at(uint64_t at_us, Task fn) {
  const uint64_t id = next_id_++;
  heap_.push(Event{std::max(at_us, now_), next_seq_++, id, std::move(fn)});
  ++live_;
  return id;
}

void EventQueue::cancel(uint64_t id) {
  cancelled_.push_back(id);
  if (live_ > 0) --live_;
}

bool EventQueue::is_cancelled(uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  // Swap-erase: cancellation lists stay tiny (timers are mostly one-shot).
  *it = cancelled_.back();
  cancelled_.pop_back();
  return true;
}

uint64_t EventQueue::run_until(uint64_t until_us) {
  uint64_t executed = 0;
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (top.at > until_us) break;
    Event ev = std::move(const_cast<Event&>(top));
    heap_.pop();
    if (is_cancelled(ev.id)) continue;
    --live_;
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  // The virtual clock advances to the boundary even when future events
  // remain pending past it (callers interleave run_until with injections).
  if (until_us != UINT64_MAX) now_ = std::max(now_, until_us);
  return executed;
}

}  // namespace bespokv::sim
