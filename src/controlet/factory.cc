#include "src/controlet/aa_ec.h"
#include "src/controlet/aa_sc.h"
#include "src/controlet/controlet.h"
#include "src/controlet/ms_ec.h"
#include "src/controlet/ms_sc.h"

namespace bespokv {

std::shared_ptr<ControletBase> make_controlet(Topology topology,
                                              Consistency consistency,
                                              ControletConfig cfg) {
  if (topology == Topology::kMasterSlave) {
    if (consistency == Consistency::kStrong) {
      return std::make_shared<MsScControlet>(std::move(cfg));
    }
    return std::make_shared<MsEcControlet>(std::move(cfg));
  }
  if (consistency == Consistency::kStrong) {
    return std::make_shared<AaScControlet>(std::move(cfg));
  }
  return std::make_shared<AaEcControlet>(std::move(cfg));
}

}  // namespace bespokv
