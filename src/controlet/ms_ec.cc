#include "src/controlet/ms_ec.h"

#include "src/common/logging.h"

namespace bespokv {

namespace {
std::string prefixed_key(const Message& m) {
  if (m.table.empty()) return m.key;
  return m.table + "\x1f" + m.key;
}
}  // namespace

MsEcControlet::MsEcControlet(ControletConfig cfg)
    : ControletBase(std::move(cfg)) {}

void MsEcControlet::start(Runtime& rt) {
  ControletBase::start(rt);
  flush_timer_ = rt_->set_periodic(cfg_.flush_period_us, [this] { flush(); });
}

void MsEcControlet::stop() {
  if (rt_ != nullptr && flush_timer_ != 0) rt_->cancel_timer(flush_timer_);
  flush_timer_ = 0;
  ControletBase::stop();
}

void MsEcControlet::do_write(EventContext ctx) {
  if (!is_head()) {
    ctx.reply(Message::reply(Code::kNotLeader));
    return;
  }
  const bool is_del = ctx.req.op == Op::kDel;
  if (is_del && !local_has(prefixed_key(ctx.req))) {
    ctx.reply(Message::reply(Code::kNotFound));
    return;
  }
  // A retried token reuses the version pinned by its first attempt so the
  // write keeps its original LWW slot (see ControletBase::token_version).
  uint64_t version = token_version(ctx.req.token);
  if (version == 0) {
    version = next_version();
    record_token_version(ctx.req.token, version);
  }
  KV kv{prefixed_key(ctx.req), ctx.req.value, version};

  // Commit locally, acknowledge, and queue the asynchronous propagation
  // (Fig. 15a steps 2-4: at least one datalet is written before the ack).
  apply_replicated(kv, is_del);
  Message rep = Message::reply(Code::kOk);
  rep.seq = version;
  ctx.reply(std::move(rep));

  buffer_.push_back(PendingWrite{std::move(kv), is_del});
  if (buffer_.size() >= cfg_.flush_batch) flush();
}

void MsEcControlet::flush() {
  if (buffer_.empty() || !is_head()) return;
  const auto& reps = replicas();
  if (reps.size() <= 1) {
    buffer_.clear();  // no slaves to propagate to
    return;
  }
  std::vector<KV> kvs;
  std::vector<std::string> ops;
  const size_t n = std::min<size_t>(buffer_.size(), cfg_.flush_batch);
  kvs.reserve(n);
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    kvs.push_back(buffer_[i].kv);
    ops.push_back(buffer_[i].del ? "D" : "P");
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(n));
  for (size_t i = 1; i < reps.size(); ++i) {
    send_batch(i, kvs, ops, /*attempts_left=*/3);
  }
  ++batches_sent_;
  metrics().counter("propagate.batches").inc();
  metrics().counter("propagate.kvs").inc(n);
  if (!buffer_.empty()) flush();  // drain oversized buffers promptly
}

void MsEcControlet::send_batch(size_t slave_index, std::vector<KV> kvs,
                               std::vector<std::string> ops,
                               int attempts_left) {
  const auto& reps = replicas();
  if (slave_index >= reps.size()) return;
  const Addr slave = reps[slave_index].controlet;
  Message m;
  m.op = Op::kPropagate;
  m.shard = cfg_.shard;
  m.epoch = map_.epoch;
  m.kvs = kvs;
  m.strs = ops;
  ++outstanding_;
  rt_->call(slave, std::move(m),
            [this, slave, slave_index, kvs = std::move(kvs),
             ops = std::move(ops), attempts_left](Status s, Message rep) mutable {
              --outstanding_;
              if (s.ok() && rep.code == Code::kOk) return;
              if (s.ok() && rep.code == Code::kConflict) {
                // The slave fenced this batch: its epoch is ahead of ours —
                // we were deposed (likely partitioned from the coordinator).
                // The slave is healthy, so no failure report, and retrying
                // is futile: the promoted master owns propagation now.
                note_deposed();
                return;
              }
              if (attempts_left <= 1) {
                // Slave presumed dead: the coordinator's failover will
                // resync it from a snapshot; stop retrying.
                report_failure(slave);
                return;
              }
              send_batch(slave_index, std::move(kvs), std::move(ops),
                         attempts_left - 1);
            },
            cfg_.rpc_timeout_us);
}

void MsEcControlet::handle_internal(const Addr& from, Message req,
                                    Replier reply) {
  if (req.op == Op::kPropagate) {
    // Sink-side fence: propagation minted under an older epoch comes from a
    // deposed master — rejecting it here keeps the deposed side's post-
    // failover acks from leaking into the surviving replicas.
    if (reject_stale_epoch(req, reply)) return;
    for (size_t i = 0; i < req.kvs.size(); ++i) {
      const bool is_del = i < req.strs.size() && req.strs[i] == "D";
      apply_replicated(req.kvs[i], is_del);
    }
    reply(Message::reply(Code::kOk));
    return;
  }
  ControletBase::handle_internal(from, std::move(req), std::move(reply));
}

void MsEcControlet::on_transition_new_side() {
  // AA+EC -> MS+EC (§V-B): the new master takes over propagation duty from
  // the shared log. Pull every retained entry; LWW application dedups what
  // the datalet already holds, and queuing them re-propagates the in-flight
  // suffix to the slaves.
  if (!is_head() || !sharedlog_.has_value()) return;
  auto pull = std::make_shared<std::function<void(uint64_t)>>();
  *pull = [this, pull](uint64_t from_seq) {
    sharedlog_->fetch(from_seq, cfg_.shard, 512,
                      [this, pull](Status s, Message rep) {
                        if (!s.ok()) return;
                        if (rep.code == Code::kOutOfRange) return;
                        for (size_t i = 0; i < rep.kvs.size(); ++i) {
                          const bool is_del =
                              i < rep.strs.size() && rep.strs[i] == "D";
                          // Rebase log sequences into the epoch-prefixed
                          // version space (see AaEcControlet::version_of);
                          // content is identical, so the overwrite is benign
                          // and ordering among log entries is preserved.
                          KV kv = rep.kvs[i];
                          kv.seq = (map_.epoch << 40) | (kv.seq & ((1ULL << 40) - 1));
                          apply_replicated(kv, is_del);
                          buffer_.push_back(PendingWrite{std::move(kv), is_del});
                        }
                        if (rep.epoch < rep.seq) (*pull)(rep.epoch);
                      });
  };
  (*pull)(1);
}

}  // namespace bespokv
