#include "src/controlet/admission.h"

#include <algorithm>

namespace bespokv {

void AdmissionController::attach_metrics(obs::MetricsRegistry& m) {
  c_admitted_ = &m.counter("admit.admitted");
  c_shed_ = &m.counter("admit.shed");
  c_deadline_shed_ = &m.counter("admit.deadline_shed");
  c_deadline_miss_ = &m.counter("admit.deadline_miss");
  g_depth_ = &m.gauge("admit.queue_depth");
}

bool AdmissionController::should_shed(uint64_t backlog_us,
                                      uint64_t* retry_after_us) {
  if (!enabled()) return false;
  const double predicted_wait_us =
      static_cast<double>(backlog_us) +
      static_cast<double>(inflight_) * ema_latency_us_;
  const bool queue_full = inflight_ >= cfg_.max_inflight;
  const bool past_deadline =
      cfg_.deadline_us > 0 &&
      predicted_wait_us > static_cast<double>(cfg_.deadline_us);
  if (!queue_full && !past_deadline) return false;
  if (c_shed_ != nullptr) {
    c_shed_->inc();
    if (past_deadline && !queue_full) c_deadline_shed_->inc();
  }
  if (retry_after_us != nullptr) {
    // Size the hint to the backlog: roughly how long until the current
    // inflight set drains, floored at one EMA service time. The client
    // jitters on top, so synchronized shed victims do not re-stampede.
    const double drain_us = std::max(predicted_wait_us, ema_latency_us_);
    *retry_after_us = static_cast<uint64_t>(std::min(drain_us, 1e7));
  }
  return true;
}

bool AdmissionController::admit(uint64_t backlog_us, uint64_t* retry_after_us) {
  if (should_shed(backlog_us, retry_after_us)) return false;
  if (!enabled()) return true;
  ++inflight_;
  if (c_admitted_ != nullptr) {
    c_admitted_->inc();
    g_depth_->set(static_cast<int64_t>(inflight_));
  }
  return true;
}

void AdmissionController::complete(uint64_t now_us, uint64_t admitted_at_us) {
  if (inflight_ > 0) --inflight_;
  const uint64_t lat = now_us >= admitted_at_us ? now_us - admitted_at_us : 0;
  ema_latency_us_ = ema_latency_us_ == 0
                        ? static_cast<double>(lat)
                        : (1 - cfg_.ema_alpha) * ema_latency_us_ +
                              cfg_.ema_alpha * static_cast<double>(lat);
  if (c_deadline_miss_ != nullptr) {
    if (cfg_.deadline_us > 0 && lat > cfg_.deadline_us) {
      c_deadline_miss_->inc();
    }
    g_depth_->set(static_cast<int64_t>(inflight_));
  }
}

}  // namespace bespokv
