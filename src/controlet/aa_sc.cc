#include "src/controlet/aa_sc.h"

#include <memory>

#include "src/common/logging.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {
std::string prefixed_key(const Message& m) {
  if (m.table.empty()) return m.key;
  return m.table + "\x1f" + m.key;
}
}  // namespace

AaScControlet::AaScControlet(ControletConfig cfg)
    : ControletBase(std::move(cfg)) {}

void AaScControlet::do_write(EventContext ctx) {
  if (!dlm_.has_value()) {
    ctx.reply(Message::reply(Code::kUnavailable, "no DLM configured"));
    return;
  }
  // A retried token reuses the version pinned by its first attempt so the
  // write keeps its original LWW slot (see ControletBase::token_version).
  // Per-controlet only: a retry that lands on a *different* active after a
  // map refresh still re-executes with a fresh version.
  uint64_t version = token_version(ctx.req.token);
  if (version == 0) {
    version = next_version();
    record_token_version(ctx.req.token, version);
  }
  const bool is_del = ctx.req.op == Op::kDel;
  const std::string key = prefixed_key(ctx.req);
  KV kv{key, ctx.req.value, version};

  ++inflight_;
  auto reply = ctx.reply;
  // Replication-stage span: write-lock acquisition at the DLM (Fig. 15b
  // steps 2-3), including any wait behind a contending holder.
  const TraceContext tctx = rt_->obs().tracer().current();
  const uint64_t lock_t0 = rt_->now_us();
  dlm_->lock(key, /*write=*/true, [this, key, kv = std::move(kv), is_del,
                                   reply, tctx, lock_t0](Status s) mutable {
    if (!s.ok()) {
      --inflight_;
      // kConflict = the DLM's per-shard fence rejected our epoch: we have
      // been deposed by a failover we have not heard about. Clients speak
      // kNotLeader (refresh map, find a live active).
      reply(Message::reply(s.code() == Code::kTimeout   ? Code::kTimeout
                           : s.code() == Code::kConflict ? Code::kNotLeader
                                                         : Code::kUnavailable));
      return;
    }
    ++lock_grants_;
    obs::record_stage(*rt_, tctx, "dlm.lock", lock_t0);
    if (is_del && !local_has(key)) {
      dlm_->unlock(key);
      --inflight_;
      reply(Message::reply(Code::kNotFound));
      return;
    }
    // Fig. 15b steps 4-5: update every replica while holding the lock.
    apply_replicated(kv, is_del);
    const auto& reps = replicas();
    auto remaining = std::make_shared<size_t>(0);
    auto failed = std::make_shared<bool>(false);
    auto finish = [this, key, reply, failed, version = kv.seq] {
      dlm_->unlock(key);
      --inflight_;
      Message rep = Message::reply(*failed ? Code::kUnavailable : Code::kOk);
      // The applied version rides back on the ack for the migration
      // dual-write path (it keeps the write's LWW slot at the dest).
      if (!*failed) rep.seq = version;
      reply(std::move(rep));
    };
    for (const auto& r : reps) {
      if (r.controlet == rt_->self()) continue;
      ++*remaining;
    }
    if (*remaining == 0) {
      finish();
      return;
    }
    Message m;
    m.op = Op::kPropagate;
    m.shard = cfg_.shard;
    m.epoch = map_.epoch;
    m.kvs.push_back(kv);
    m.strs.push_back(is_del ? "D" : "P");
    for (const auto& r : reps) {
      if (r.controlet == rt_->self()) continue;
      rt_->call(r.controlet, m,
                [remaining, failed, finish, this,
                 peer = r.controlet](Status ps, Message prep) {
                  if (!ps.ok() || prep.code != Code::kOk) {
                    *failed = true;
                    // kConflict means the peer fenced *us* (we are the
                    // deposed side) — it is healthy, so no failure report.
                    if (!(ps.ok() && prep.code == Code::kConflict)) {
                      report_failure(peer);
                    }
                  }
                  if (--*remaining == 0) finish();
                },
                cfg_.rpc_timeout_us);
    }
  }, map_.epoch, cfg_.shard);
}

void AaScControlet::do_read(EventContext ctx) {
  // Per-request eventual reads skip the lock entirely (§IV-C).
  if (ctx.req.consistency == ConsistencyLevel::kEventual ||
      !dlm_.has_value()) {
    ctx.reply(apply_local_read(ctx.req));
    return;
  }
  const std::string key = prefixed_key(ctx.req);
  auto reply = ctx.reply;
  Message req = ctx.req;
  const TraceContext tctx = rt_->obs().tracer().current();
  const uint64_t lock_t0 = rt_->now_us();
  dlm_->lock(key, /*write=*/false, [this, key, req = std::move(req),
                                    reply, tctx, lock_t0](Status s) {
    if (!s.ok()) {
      // Fenced read lock: a deposed active may have missed propagations, so
      // serving this strong read could return stale data.
      reply(Message::reply(s.code() == Code::kTimeout   ? Code::kTimeout
                           : s.code() == Code::kConflict ? Code::kNotLeader
                                                         : Code::kUnavailable));
      return;
    }
    ++lock_grants_;
    obs::record_stage(*rt_, tctx, "dlm.lock", lock_t0);
    Message rep = apply_local_read(req);
    dlm_->unlock(key);
    reply(std::move(rep));
  }, map_.epoch, cfg_.shard);
}

void AaScControlet::handle_internal(const Addr& from, Message req,
                                    Replier reply) {
  if (req.op == Op::kPropagate) {
    // Sink-side fence: a propagation minted under an older epoch comes from
    // a deposed active that slipped past the DLM before its fence ratcheted.
    if (reject_stale_epoch(req, reply)) return;
    for (size_t i = 0; i < req.kvs.size(); ++i) {
      const bool is_del = i < req.strs.size() && req.strs[i] == "D";
      apply_replicated(req.kvs[i], is_del);
    }
    reply(Message::reply(Code::kOk));
    return;
  }
  ControletBase::handle_internal(from, std::move(req), std::move(reply));
}

}  // namespace bespokv
