// MS+EC controlet: Master-Slave with Eventual Consistency (§C.A, Fig. 15a).
// The master commits locally and acknowledges immediately; writes are
// propagated to slaves asynchronously in batches. Gets are served by any
// replica. The §V transitions hinge on this controlet's propagation buffer:
// MS+EC -> * drains the buffer before handing over, and the AA+EC -> MS+EC
// new-side master first re-propagates in-flight shared-log entries.
#pragma once

#include <deque>

#include "src/controlet/controlet.h"

namespace bespokv {

class MsEcControlet : public ControletBase {
 public:
  explicit MsEcControlet(ControletConfig cfg);

  void start(Runtime& rt) override;
  void stop() override;

  size_t pending_propagations() const { return buffer_.size(); }
  uint64_t batches_sent() const { return batches_sent_; }

 protected:
  void do_write(EventContext ctx) override;
  void handle_internal(const Addr& from, Message req, Replier reply) override;
  void begin_drain() override { flush(); }
  bool drained() const override {
    return buffer_.empty() && outstanding_ == 0 && inflight_ == 0;
  }
  void on_transition_new_side() override;

 private:
  struct PendingWrite {
    KV kv;
    bool del;
  };

  void flush();
  void send_batch(size_t slave_index, std::vector<KV> kvs,
                  std::vector<std::string> ops, int attempts_left);

  std::deque<PendingWrite> buffer_;
  size_t outstanding_ = 0;      // in-flight propagation RPCs
  uint64_t flush_timer_ = 0;
  uint64_t batches_sent_ = 0;
};

}  // namespace bespokv
