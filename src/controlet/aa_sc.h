// AA+SC controlet: Active-Active with Strong Consistency via the DLM
// (§C.B, Fig. 15b). Any replica accepts a Put: it takes the per-key write
// lock, updates every replica, releases the lock and acks. Gets take a read
// lock (skipped for per-request eventual reads, §IV-C). Leases auto-expire
// at the DLM to preserve liveness across controlet crashes.
#pragma once

#include "src/controlet/controlet.h"

namespace bespokv {

class AaScControlet : public ControletBase {
 public:
  explicit AaScControlet(ControletConfig cfg);

  uint64_t lock_grants() const { return lock_grants_; }

 protected:
  void do_write(EventContext ctx) override;
  void do_read(EventContext ctx) override;
  void handle_internal(const Addr& from, Message req, Replier reply) override;
  bool drained() const override { return inflight_ == 0; }

 private:
  uint64_t lock_grants_ = 0;
};

}  // namespace bespokv
