#include "src/controlet/aa_ec.h"

#include "src/common/logging.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {
std::string prefixed_key(const Message& m) {
  if (m.table.empty()) return m.key;
  return m.table + "\x1f" + m.key;
}
}  // namespace

// Log sequences are rebased into the same epoch-prefixed version space the
// MS controlets use (ControletBase::next_version), so LWW application stays
// monotonic across §V transitions: a write ordered by the shard map's
// current epoch always supersedes versions minted under earlier epochs.
uint64_t AaEcControlet::version_of(uint64_t log_seq) const {
  return (map_.epoch << 40) | (log_seq & ((1ULL << 40) - 1));
}

AaEcControlet::AaEcControlet(ControletConfig cfg)
    : ControletBase(std::move(cfg)) {}

void AaEcControlet::start(Runtime& rt) {
  ControletBase::start(rt);
  fetch_timer_ =
      rt_->set_periodic(cfg_.log_fetch_period_us, [this] { fetch_tick(); });
}

void AaEcControlet::stop() {
  if (rt_ != nullptr && fetch_timer_ != 0) rt_->cancel_timer(fetch_timer_);
  fetch_timer_ = 0;
  ControletBase::stop();
}

void AaEcControlet::do_write(EventContext ctx) {
  if (!sharedlog_.has_value()) {
    ctx.reply(Message::reply(Code::kUnavailable, "no shared log configured"));
    return;
  }
  const bool is_del = ctx.req.op == Op::kDel;
  const std::string key = prefixed_key(ctx.req);
  if (is_del && !local_has(key)) {
    // Best-effort under EC: this active has not seen the key.
    ctx.reply(Message::reply(Code::kNotFound));
    return;
  }
  std::string value = ctx.req.value;

  // Fig. 15c: append to the shared log first (steps 2), then commit on the
  // local datalet (step 3) and ack (step 4). The log's sequence number is
  // the write's global version.
  ++inflight_;
  auto reply = ctx.reply;
  Message logged = ctx.req;
  // Replication-stage span: the shared-log append RPC (Fig. 15c step 2) as
  // seen from this active, i.e. log round-trip including queueing.
  const TraceContext tctx = rt_->obs().tracer().current();
  const uint64_t app_t0 = rt_->now_us();
  sharedlog_->append(
      logged, cfg_.shard,
      [this, key, value = std::move(value), is_del, reply, tctx,
       app_t0](Status s, uint64_t seq) {
        --inflight_;
        if (!s.ok()) {
          // kConflict = the log's per-shard fence rejected our epoch: we
          // have been deposed/retired by a reconfiguration we have not
          // heard about yet. Clients speak kNotLeader (refresh + retry).
          reply(Message::reply(s.code() == Code::kTimeout   ? Code::kTimeout
                               : s.code() == Code::kConflict ? Code::kNotLeader
                                                             : Code::kUnavailable));
          return;
        }
        metrics().counter("sharedlog.appends").inc();
        obs::record_stage(*rt_, tctx, "sharedlog.append", app_t0);
        apply_replicated(KV{key, value, version_of(seq)}, is_del);
        Message rep = Message::reply(Code::kOk);
        // Epoch-rebased version, not the raw log seq: the migration
        // dual-write path forwards rep.seq as the write's LWW slot, so it
        // must live in the same version space every replica applies.
        rep.seq = version_of(seq);
        reply(std::move(rep));
      },
      map_.epoch);
}

void AaEcControlet::fetch_tick() {
  if (fetch_inflight_ || !sharedlog_.has_value()) return;
  fetch_inflight_ = true;
  sharedlog_->fetch(
      fetch_from_, cfg_.shard, 512, [this](Status s, Message rep) {
        fetch_inflight_ = false;
        if (!s.ok()) return;
        if (rep.code == Code::kOutOfRange) {
          // Asked for trimmed history: jump to the retained base. Entries
          // below it were already applied cluster-wide before trimming.
          fetch_from_ = rep.seq;
          return;
        }
        for (size_t i = 0; i < rep.kvs.size(); ++i) {
          const bool is_del = i < rep.strs.size() && rep.strs[i] == "D";
          KV kv = rep.kvs[i];
          kv.seq = version_of(kv.seq);
          apply_replicated(kv, is_del);
          ++applied_from_log_;
        }
        if (rep.epoch > fetch_from_) fetch_from_ = rep.epoch;
        // Fall through quickly if we are far behind the tail.
        if (fetch_from_ < rep.seq) rt_->post([this] { fetch_tick(); });
      });
}

void AaEcControlet::catchup_from(const Addr& /*source*/,
                                 std::function<void(bool)> done) {
  if (!sharedlog_.has_value()) {
    done(false);
    return;
  }
  sharedlog_->tail([this, done = std::move(done)](Status s,
                                                  uint64_t tail) mutable {
    if (!s.ok()) {
      done(false);
      return;
    }
    catchup_drain(tail, std::move(done));
  });
}

void AaEcControlet::catchup_drain(uint64_t target,
                                  std::function<void(bool)> done) {
  if (fetch_from_ >= target) {
    done(true);
    return;
  }
  // Same page-walk as fetch_tick, but driven to a fixed target so the node
  // rejoins only once it has replayed everything appended while it was down.
  // The periodic fetch_tick may interleave; LWW application and the
  // monotonic fetch_from_ make the overlap idempotent.
  sharedlog_->fetch(
      fetch_from_, cfg_.shard, 512,
      [this, target, done = std::move(done)](Status s, Message rep) mutable {
        if (!s.ok()) {
          done(false);
          return;
        }
        if (rep.code == Code::kOutOfRange) {
          fetch_from_ = rep.seq;  // jump past trimmed history
        } else {
          for (size_t i = 0; i < rep.kvs.size(); ++i) {
            const bool is_del = i < rep.strs.size() && rep.strs[i] == "D";
            KV kv = rep.kvs[i];
            kv.seq = version_of(kv.seq);
            apply_replicated(kv, is_del);
            ++applied_from_log_;
          }
          if (rep.epoch > fetch_from_) {
            fetch_from_ = rep.epoch;
          } else {
            // Empty page with no forward progress: nothing left below the
            // target, so stop walking instead of spinning.
            fetch_from_ = target;
          }
        }
        rt_->post([this, target, done = std::move(done)]() mutable {
          catchup_drain(target, std::move(done));
        });
      });
}

void AaEcControlet::prepare_migration_copy(std::function<void(bool)> done) {
  // Acked writes live in the shared log, possibly ahead of the local poll
  // cursor. Drain to the current tail before the copier snapshots the local
  // image, or the dest provably misses acked data. Writes appended *after*
  // this point are covered by the dual-write forward, not the copy.
  if (!sharedlog_.has_value()) {
    done(false);
    return;
  }
  sharedlog_->tail([this, done = std::move(done)](Status s,
                                                  uint64_t tail) mutable {
    if (!s.ok()) {
      done(false);
      return;
    }
    catchup_drain(tail, std::move(done));
  });
}

void AaEcControlet::on_transition_new_side() {
  // * -> AA+EC: adopt the current log tail as the fetch origin; the shared
  // datalet already holds everything the old controlet applied.
  if (!sharedlog_.has_value()) return;
  sharedlog_->tail([this](Status s, uint64_t tail) {
    if (s.ok() && tail > fetch_from_) fetch_from_ = tail;
  });
}

}  // namespace bespokv
