// Admission control and load shedding (DESIGN.md "Admission control &
// overload"). Open-loop traffic has no built-in brake: when arrivals exceed
// a controlet's service capacity, the inflight set — client ops admitted but
// not yet replied — grows without bound, every queued op ages past any useful
// deadline, and retries pile on top (queue collapse). The controller bounds
// the inflight set and sheds the excess *early*, at request entry, where a
// rejection costs one reply instead of a full replication fan-out:
//
//   * Queue bound: more than `max_inflight` admitted-but-unfinished ops
//     => shed.
//   * Deadline-aware drop: the predicted wait for a new arrival
//     (ingress-queue backlog + inflight x EMA service latency) already
//     exceeds `deadline_us` => shed now rather than serve a guaranteed-late
//     reply. The backlog term comes from Runtime::queue_backlog_us(), so
//     queueing that happens before the handler even runs (reactor/ingress
//     queue) still triggers shedding.
//
// A shed request is answered kOverloaded with a retry-after hint (reply
// `seq`, µs) sized to the current backlog; the client library honors it as a
// backoff floor and skips the map refresh (routing is fine — see client.cc).
//
// Metrics (src/obs): admit.admitted / admit.shed / admit.deadline_shed
// counters, admit.deadline_miss (served but late), and the admit.queue_depth
// gauge sampled at every admit/complete.
#pragma once

#include <cstdint>

#include "src/obs/metrics.h"

namespace bespokv {

struct AdmissionConfig {
  // Maximum admitted-but-unfinished client ops (0 disables admission control).
  uint32_t max_inflight = 0;
  // Predicted-wait bound: shed when inflight * EMA latency exceeds this
  // (0 = queue bound only). Also the lateness threshold for deadline_miss.
  uint64_t deadline_us = 0;
  // EMA smoothing for the per-op service latency estimate.
  double ema_alpha = 0.1;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg = {}) : cfg_(cfg) {}

  bool enabled() const { return cfg_.max_inflight > 0; }

  // Registers the admit.* instruments; call once the node has a registry.
  void attach_metrics(obs::MetricsRegistry& m);

  // Shed decision only — no inflight accounting. Used by the ingress fast
  // path (Service::admit_ingress), where a true return means "answer
  // kOverloaded now, *retry_after_us carries the backpressure hint".
  // `backlog_us` is the node's ingress-queue wait estimate.
  bool should_shed(uint64_t backlog_us, uint64_t* retry_after_us);

  // Admission decision for one client request. True = admitted (the caller
  // must invoke complete() exactly once when the reply fires); false = shed,
  // with *retry_after_us the backpressure hint for the client.
  bool admit(uint64_t backlog_us, uint64_t* retry_after_us);

  // Completion of an op admitted at `admitted_at_us`; `now_us` feeds the
  // latency EMA and the deadline-miss counter.
  void complete(uint64_t now_us, uint64_t admitted_at_us);

  uint64_t inflight() const { return inflight_; }
  double ema_latency_us() const { return ema_latency_us_; }

 private:
  AdmissionConfig cfg_;
  uint64_t inflight_ = 0;
  double ema_latency_us_ = 0;
  obs::Counter* c_admitted_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_deadline_shed_ = nullptr;
  obs::Counter* c_deadline_miss_ = nullptr;
  obs::Gauge* g_depth_ = nullptr;
};

}  // namespace bespokv
