// The controlet programming abstraction (§III-B, Appendix B).
//
// Controlets are built from event handlers. Basic events (connection/request
// lifecycle) are raised by the framework; extended events are defined by the
// controlet developer with On() and raised with Emit() — exactly the
// abstraction of the paper's Fig. 13/14 (OnReqIn parses the request and
// Emits "PUT"/"GET"; developer handlers implement the distributed logic).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/net/runtime.h"
#include "src/proto/message.h"

namespace bespokv {

// Context flowing through a request's event chain. Handlers may stash the
// replier and complete it later (asynchronous fan-out).
struct EventContext {
  Addr from;
  Message req;
  Replier reply;
};

// Well-known basic events raised by the controlet framework.
inline constexpr const char* kEvReqIn = "ON_REQ_IN";
inline constexpr const char* kEvRspOut = "ON_RSP_OUT";

class EventBus {
 public:
  using Handler = std::function<void(EventContext&)>;

  // Registers a handler for `event` (extended events: On; Table III).
  void on(const std::string& event, Handler h) {
    handlers_[event].push_back(std::move(h));
  }

  // Raises `event`, invoking all registered handlers in registration order.
  // Returns false if no handler is registered (caller decides the fallback).
  bool emit(const std::string& event, EventContext& ctx) const {
    auto it = handlers_.find(event);
    if (it == handlers_.end() || it->second.empty()) return false;
    for (const auto& h : it->second) h(ctx);
    return true;
  }

  bool has(const std::string& event) const { return handlers_.count(event) > 0; }

 private:
  std::map<std::string, std::vector<Handler>> handlers_;
};

}  // namespace bespokv
