// AA+EC controlet: Active-Active with Eventual Consistency via the shared
// log (§C.C, Fig. 15c). A Put is appended to the shared log (global order),
// committed locally, and acked; every active asynchronously fetches and
// applies its peers' entries in log order (last-writer-wins by sequence).
#pragma once

#include "src/controlet/controlet.h"

namespace bespokv {

class AaEcControlet : public ControletBase {
 public:
  explicit AaEcControlet(ControletConfig cfg);

  void start(Runtime& rt) override;
  void stop() override;

  uint64_t applied_from_log() const { return applied_from_log_; }
  uint64_t fetch_position() const { return fetch_from_; }

 protected:
  void do_write(EventContext ctx) override;
  bool drained() const override { return inflight_ == 0; }
  void on_transition_new_side() override;
  // Crash-restart resync: replay the shared log up to the current tail
  // instead of snapshotting a peer — the log is the authoritative order.
  void catchup_from(const Addr& source,
                    std::function<void(bool)> done) override;
  // Migration copier prologue: drain the shared log to the current tail so
  // the local image includes every acked write before it is snapshotted.
  void prepare_migration_copy(std::function<void(bool)> done) override;
  // Everything below fetch_from_ has been applied locally; with a durable
  // engine (fsync per apply) that prefix also survives power loss, so it is
  // safe for the coordinator to trim once every replica reports it.
  uint64_t durable_watermark() const override {
    return cfg_.datalet != nullptr && cfg_.datalet->durable() &&
                   fetch_from_ > 1
               ? fetch_from_ - 1
               : 0;
  }

 private:
  void fetch_tick();
  void catchup_drain(uint64_t target, std::function<void(bool)> done);
  uint64_t version_of(uint64_t log_seq) const;

  uint64_t fetch_from_ = 1;      // next log position to scan
  bool fetch_inflight_ = false;
  uint64_t fetch_timer_ = 0;
  uint64_t applied_from_log_ = 0;
};

}  // namespace bespokv
