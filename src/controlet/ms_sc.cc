#include "src/controlet/ms_sc.h"

#include "src/common/logging.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {

std::string prefixed_key(const Message& m) {
  if (m.table.empty()) return m.key;
  return m.table + "\x1f" + m.key;
}

}  // namespace

MsScControlet::MsScControlet(ControletConfig cfg)
    : ControletBase(std::move(cfg)) {}

void MsScControlet::do_write(EventContext ctx) {
  if (!is_head()) {
    // Clients route Puts to the head via consistent hashing; hitting a
    // non-head means the client's map is stale.
    ctx.reply(Message::reply(Code::kNotLeader));
    return;
  }
  if (ctx.req.op == Op::kDel && !local_has(prefixed_key(ctx.req))) {
    ctx.reply(Message::reply(Code::kNotFound));
    return;
  }
  Message w;
  w.op = Op::kChainPut;
  w.key = prefixed_key(ctx.req);
  w.value = ctx.req.value;
  // A retried token reuses the version pinned by its first attempt so the
  // write keeps its original LWW slot (see ControletBase::token_version).
  w.seq = token_version(ctx.req.token);
  if (w.seq == 0) {
    w.seq = next_version();
    record_token_version(ctx.req.token, w.seq);
  }
  w.epoch = map_.epoch;
  w.shard = cfg_.shard;
  // The token rides down the chain so every replica pins token -> version:
  // a post-failover head then re-executes retries with the original version.
  w.token = ctx.req.token;
  if (ctx.req.op == Op::kDel) w.flags |= kFlagDelete;

  ++inflight_;
  auto reply = ctx.reply;
  const uint64_t version = w.seq;
  apply_and_forward(std::move(w), [this, reply, version](Code code) {
    --inflight_;
    // kConflict from down-chain means *we* were fenced as a deposed head.
    // Clients speak kNotLeader (refresh map, find the real head) — the raw
    // conflict never leaves the cluster.
    if (code == Code::kConflict) code = Code::kNotLeader;
    Message rep = Message::reply(code);
    // The applied version rides back on the ack: the migration dual-write
    // path forwards it so the write keeps its LWW slot at the dest.
    if (code == Code::kOk) rep.seq = version;
    reply(std::move(rep));
  });
}

void MsScControlet::apply_and_forward(Message w, std::function<void(Code)> done) {
  ++chain_writes_;
  pin_token_version(w.token, w.seq);
  apply_replicated(KV{w.key, w.value, w.seq}, (w.flags & kFlagDelete) != 0);
  // My chain successor under the *current* map (failover may have reshaped
  // the chain since the write entered it).
  const auto& reps = replicas();
  size_t next = reps.size();
  for (size_t i = 0; i + 1 < reps.size(); ++i) {
    if (reps[i].controlet == rt_->self()) {
      next = i + 1;
      break;
    }
  }
  if (next >= reps.size()) {
    done(Code::kOk);  // I am the tail (or the chain shrank to me)
    return;
  }
  const Addr successor = reps[next].controlet;
  // Replication-stage span: covers the forward RPC to the successor (and,
  // transitively, the rest of the chain) as seen from this node. Clear the
  // inbound trace context so the forward is re-stamped as a child of *this*
  // dispatch — otherwise the whole chain flattens onto the head's span.
  w.trace = TraceContext{};
  const TraceContext tctx = rt_->obs().tracer().current();
  const uint64_t fwd_t0 = rt_->now_us();
  rt_->call(successor, w,
            [this, w, done, successor, tctx, fwd_t0](Status s,
                                                     Message rep) mutable {
              if (s.ok() && rep.code == Code::kOk) {
                obs::record_stage(*rt_, tctx, "chain.forward", fwd_t0);
                done(Code::kOk);
                return;
              }
              if (s.ok() && rep.code == Code::kConflict) {
                // The successor's epoch is ahead of this write's: we are the
                // deposed side of a failover that has not reached us (likely
                // partitioned from the coordinator). Self-fence and give up —
                // the successor is healthy, so no failure report.
                note_deposed();
                done(Code::kConflict);
                return;
              }
              // The successor died or a new chain is forming. If the map has
              // already changed, retry along the fresh chain ("skip
              // forwarding to the failed node"); otherwise surface the error.
              report_failure(successor);
              const auto& now_reps = replicas();
              const bool still_successor =
                  std::any_of(now_reps.begin(), now_reps.end(),
                              [&](const ReplicaInfo& r) {
                                return r.controlet == successor;
                              });
              if (!still_successor) {
                apply_and_forward(std::move(w), std::move(done));
              } else {
                done(s.ok() ? rep.code : Code::kUnavailable);
              }
            },
            cfg_.rpc_timeout_us);
}

void MsScControlet::do_read(EventContext ctx) {
  // SC reads at the tail only; per-request EC reads anywhere (§IV-C). During
  // a transition the paper allows EC reads at any node.
  const bool eventual = ctx.req.consistency == ConsistencyLevel::kEventual;
  if (!eventual && !is_tail() && !in_transition()) {
    ctx.reply(Message::reply(Code::kNotLeader));
    return;
  }
  ctx.reply(apply_local_read(ctx.req));
}

void MsScControlet::handle_internal(const Addr& from, Message req,
                                    Replier reply) {
  if (req.op == Op::kChainPut) {
    // Sink-side fence: a chain write minted under an older epoch comes from
    // a deposed head (or a deposed middle forwarding on) — it must die here,
    // not land in the datalet (ISSUE 5: in-flight writes of a partitioned
    // master die at the replicas).
    if (reject_stale_epoch(req, reply)) return;
    apply_and_forward(std::move(req), [reply](Code code) {
      reply(Message::reply(code));
    });
    return;
  }
  ControletBase::handle_internal(from, std::move(req), std::move(reply));
}

}  // namespace bespokv
