#include "src/controlet/controlet.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/fencing.h"
#include "src/common/logging.h"
#include "src/datalet/ttl.h"

namespace bespokv {

const std::vector<ReplicaInfo> ControletBase::kNoReplicas;

ControletBase::ControletBase(ControletConfig cfg)
    : cfg_(std::move(cfg)), admission_(cfg_.admission) {}

void ControletBase::start(Runtime& rt) {
  Service::start(rt);
  c_writes_ = &metrics().counter("controlet.writes");
  c_reads_ = &metrics().counter("controlet.reads");
  c_forwards_ = &metrics().counter("controlet.p2p_forwards");
  c_dedup_hits_ = &metrics().counter("controlet.dedup_hits");
  c_catchups_ = &metrics().counter("recover.catchup");
  c_lease_fenced_ = &metrics().counter("controlet.lease_fenced");
  c_epoch_fenced_ = &metrics().counter("controlet.epoch_fenced");
  c_expired_ = &metrics().counter("evict.expired");
  admission_.attach_metrics(metrics());
  if (cfg_.datalet != nullptr) {
    // Cache-tier wrappers expire lazily against the fabric clock.
    cfg_.datalet->set_clock([this] { return rt_->now_us(); });
  }
  if (cfg_.ttl_sweep_period_us > 0 && ttl_timer_ == 0) {
    ttl_timer_ =
        rt_->set_periodic(cfg_.ttl_sweep_period_us, [this] { sweep_expired(); });
  }
  if (started_once_) {
    // Crash-restart on the same address: refuse client traffic until we have
    // resynced from the shard (stale reads and lost chain writes otherwise).
    // The previous incarnation's in-flight state is gone — including the
    // dedup window, whose repliers died with the old mailbox.
    catching_up_ = true;
    retired_ = false;
    successor_.reset();
    drain_reported_ = false;
    dedup_.clear();
    dedup_order_.clear();
    // An open dual-write window dies with the incarnation: the coordinator
    // either aborts the migration when it notices us gone or re-sends
    // kMigrateStart on its own restart-resume path.
    mig_ = MigrationOut{};
    map_fetch_inflight_ = false;  // the old incarnation's call died with it
    if (cfg_.datalet != nullptr) {
      // The restart models a machine reboot: the engine crosses a power cut
      // and recovers whatever its durability mode preserved (volatile
      // engines keep their in-memory image — the historical model).
      Status s = cfg_.datalet->crash_restart();
      if (!s.ok()) {
        LOG_WARN << rt_->self() << ": engine crash-recovery: " << s.to_string();
      }
      // Re-seed the version counter from the recovered state so this
      // incarnation never re-mints a version an earlier write already holds
      // (LWW would silently drop one of the two).
      cfg_.datalet->for_each([this](std::string_view, const Entry& e) {
        observe_version(e.seq);
      });
      // Durable engines persisted token pins alongside the records: honor
      // them so a client retry of a pre-crash write keeps its LWW slot
      // instead of re-executing with a fresh version.
      for (const storage::TokenPin& pin : cfg_.datalet->token_pins()) {
        pin_token_version(pin.token, pin.seq);
      }
    }
    LOG_INFO << rt_->self() << ": restarted; catching up before serving";
  } else if (cfg_.datalet != nullptr) {
    cfg_.datalet->attach_metrics(metrics());
  }
  started_once_ = true;
  hb_timer_ = rt_->set_periodic(cfg_.hb_period_us, [this] { send_heartbeat(); });
  // First beat immediately: the lease grant must be in hand before the first
  // client write can reach us (clients discover us via a slower map RPC).
  send_heartbeat();
  fetch_initial_map();
}

void ControletBase::send_heartbeat() {
  Message hb;
  hb.op = Op::kHeartbeat;
  hb.key = rt_->self();
  // Durable floor piggybacked on the beat: the coordinator min-aggregates it
  // across a shard's replicas to truncate the shared log (AA+EC).
  hb.seq = durable_watermark();
  // Load report for the hot-shard detector: ops served since the last beat
  // plus the median sampled key (the natural split point for a range shard).
  hb.shard = cfg_.shard;
  hb.limit = static_cast<uint32_t>(
      std::min<uint64_t>(ops_since_hb_, UINT32_MAX));
  if (!key_sample_.empty()) {
    std::sort(key_sample_.begin(), key_sample_.end());
    hb.value = key_sample_[key_sample_.size() / 2];
  }
  ops_since_hb_ = 0;
  key_sample_.clear();
  const uint64_t sent = rt_->now_us();
  rt_->call(cfg_.coordinator, std::move(hb),
            [this, sent](Status s, Message rep) {
              // Unreachable/late: no renewal — the lease runs out on its own
              // and write_fenced() takes over. Never extend on failure.
              if (!s.ok()) return;
              if (rep.code == Code::kConflict) {
                handle_deposed();
                return;
              }
              if (rep.code != Code::kOk || rep.seq == 0) return;
              // The grant is measured from the *send* instant on our clock;
              // the coordinator measures from its (later) receive instant
              // and re-adds the skew margin it shaved off the grant, so our
              // deadline is provably the earlier one: we self-fence strictly
              // before the coordinator may promote a successor.
              lease_until_ = std::max(lease_until_, sent + rep.seq);
              // The beat reply carries the live map epoch. Being behind means
              // we missed a reconfigure push (e.g. one-way partition healed):
              // pull the map instead of serving a stale layout until deposed.
              if (rep.epoch > map_.epoch && !retired_ && !catching_up_) {
                fetch_initial_map();
              }
            },
            cfg_.rpc_timeout_us);
}

void ControletBase::handle_deposed() {
  note_deposed();
  if (rejoining_ || retired_) return;
  rejoining_ = true;
  LOG_INFO << rt_->self() << ": deposed by coordinator; rejoining as standby";
  // Order matters: re-register first (clears the coordinator's dead verdict),
  // then refetch the map so in_shard_ recomputes against the layout that
  // evicted us. Until the fresh map lands, the sink-side epoch fences cover
  // any write we might still try to replicate under the stale map.
  Message m;
  m.op = Op::kRegisterNode;
  m.key = rt_->self();
  rt_->call(cfg_.coordinator, std::move(m),
            [this](Status s, Message rep) {
              rejoining_ = false;
              if (s.ok() && rep.code == Code::kOk) fetch_initial_map();
            },
            cfg_.rpc_timeout_us);
}

bool ControletBase::lease_valid() const {
  return lease_until_ != 0 && rt_ != nullptr && rt_->now_us() < lease_until_;
}

void ControletBase::note_deposed() { lease_until_ = 0; }

bool ControletBase::write_fenced() const {
  if (!fencing_enabled()) return false;
  // AA has no master to fence; its writes are fenced at the shared sinks
  // (DLM acquire / shared-log append) instead.
  if (map_.topology != Topology::kMasterSlave) return false;
  return !lease_valid();
}

bool ControletBase::read_fenced(const Message& req) const {
  if (!fencing_enabled()) return false;
  if (map_.topology != Topology::kMasterSlave) return false;
  const bool strong =
      req.consistency == ConsistencyLevel::kStrong ||
      (req.consistency == ConsistencyLevel::kDefault &&
       map_.consistency == Consistency::kStrong);
  return strong && !lease_valid();
}

bool ControletBase::reject_stale_epoch(const Message& req,
                                       const Replier& reply) {
  if (!fencing_enabled() || req.epoch == 0) return false;
  if (req.epoch >= map_.epoch) return false;
  ++fence_rejects_;
  c_epoch_fenced_->inc();
  reply(Message::reply(Code::kConflict, "stale epoch"));
  return true;
}

void ControletBase::stop() {
  if (rt_ == nullptr) return;
  if (hb_timer_ != 0) rt_->cancel_timer(hb_timer_);
  if (drain_timer_ != 0) rt_->cancel_timer(drain_timer_);
  if (ttl_timer_ != 0) rt_->cancel_timer(ttl_timer_);
  if (mig_timer_ != 0) rt_->cancel_timer(mig_timer_);
  hb_timer_ = drain_timer_ = ttl_timer_ = mig_timer_ = 0;
}

const std::vector<ReplicaInfo>& ControletBase::replicas() const {
  const ShardInfo* s = map_.shard(cfg_.shard);
  return s == nullptr ? kNoReplicas : s->replicas;
}

uint64_t ControletBase::next_version() {
  // Epoch-prefixed versions: a post-failover master always produces larger
  // versions than its predecessor, keeping LWW application monotonic.
  const uint64_t floor = map_.epoch << 40;
  if (version_ < floor) version_ = floor;
  return ++version_;
}

void ControletBase::fetch_initial_map() {
  if (map_fetch_inflight_) return;  // heartbeat-driven refetches coalesce
  map_fetch_inflight_ = true;
  Message req;
  req.op = Op::kGetShardMap;
  rt_->call(cfg_.coordinator, std::move(req),
            [this](Status s, Message rep) {
              map_fetch_inflight_ = false;
              if (!s.ok() || rep.code != Code::kOk) {
                // Coordinator not up yet; retry shortly.
                rt_->set_timer(50'000, [this] { fetch_initial_map(); });
                return;
              }
              auto m = ShardMap::decode(rep.value);
              if (m.ok()) {
                apply_map(m.value(), rep.strs);
                if (catching_up_) begin_catchup();
              }
            },
            cfg_.rpc_timeout_us);
}

void ControletBase::begin_catchup() {
  if (!catching_up_) return;
  if (!in_shard_) {
    // Evicted while down (the coordinator already failed us over): rejoin
    // the pool as a standby; a future kFlagRecovery activation brings us
    // back with a proper recovery source.
    catching_up_ = false;
    Message m;
    m.op = Op::kRegisterNode;
    m.key = rt_->self();
    rt_->send(cfg_.coordinator, std::move(m));
    LOG_INFO << rt_->self() << ": evicted while down; rejoining as standby";
    return;
  }
  const auto& reps = replicas();
  if (reps.size() <= 1) {
    finish_catchup();  // nobody to resync from; local state is the truth
    return;
  }
  // Chain predecessor under MS (the node whose state is a superset of ours);
  // index 0 pulls from the next replica. AA overrides catchup_from anyway.
  const Addr source = reps[my_index_ == 0 ? 1 : my_index_ - 1].controlet;
  catchup_from(source, [this](bool ok) {
    if (ok) {
      finish_catchup();
    } else {
      // Source unreachable (it may be failing over itself): refetch the map
      // and retry against the fresh layout.
      rt_->set_timer(cfg_.rpc_timeout_us, [this] { fetch_initial_map(); });
    }
  });
}

void ControletBase::catchup_from(const Addr& source,
                                 std::function<void(bool)> done) {
  Message req;
  req.op = Op::kSnapshotReq;
  // Everything at or below the engine's durable floor survived the crash
  // locally; ask the peer for the suffix only (0 = full snapshot).
  req.seq = cfg_.datalet != nullptr ? cfg_.datalet->durable_seq() : 0;
  rt_->call(source, std::move(req),
            [this, done = std::move(done)](Status s, Message rep) {
              if (!s.ok() || rep.code != Code::kOk) {
                done(false);
                return;
              }
              for (const auto& kv : rep.kvs) {
                cfg_.datalet->put_if_newer(kv.key, kv.value, kv.seq);
                observe_version(kv.seq);
              }
              observe_version(rep.seq);
              done(true);
            },
            cfg_.rpc_timeout_us * 4);
}

void ControletBase::finish_catchup() {
  catching_up_ = false;
  c_catchups_->inc();
  LOG_INFO << rt_->self() << ": catch-up complete; serving again";
}

void ControletBase::apply_map(const ShardMap& m,
                              const std::vector<std::string>& aux) {
  if (m.epoch < epoch_seen_) return;  // stale push
  // Keep the delta from the map we are leaving: kWrongShard replies piggyback
  // it so a one-epoch-behind client patches its map without a coordinator
  // round trip.
  if (m.epoch > map_.epoch && !map_.shards.empty()) {
    last_delta_enc_ = diff_maps(map_, m).encode();
  }
  epoch_seen_ = m.epoch;
  map_ = m;
  if (aux.size() >= 1 && !aux[0].empty()) {
    dlm_addr_ = aux[0];
    dlm_.emplace(rt_, dlm_addr_);
  }
  if (aux.size() >= 2 && !aux[1].empty()) {
    sharedlog_addr_ = aux[1];
    sharedlog_.emplace(rt_, sharedlog_addr_);
  }
  in_shard_ = false;
  const auto& reps = replicas();
  for (size_t i = 0; i < reps.size(); ++i) {
    if (reps[i].controlet == rt_->self()) {
      in_shard_ = true;
      my_index_ = i;
      break;
    }
  }
  // A map showing our upper bound at (or inside) the moved range means the
  // cutover landed: close the dual-write window even if the kMigrateFinish
  // push races behind this reconfigure.
  if (mig_.active) {
    const ShardInfo* me = map_.shard(cfg_.shard);
    if (me != nullptr && !me->upper.empty() && me->upper <= mig_.lo) {
      mig_ = MigrationOut{};
    }
  }
  on_reconfigured();
}

uint64_t ControletBase::token_version(uint64_t token) const {
  if (token == 0) return 0;
  auto it = dedup_.find(token);
  return it != dedup_.end() ? it->second.seq : 0;
}

void ControletBase::record_token_version(uint64_t token, uint64_t seq) {
  if (token == 0) return;
  auto it = dedup_.find(token);
  if (it != dedup_.end()) it->second.seq = seq;
}

void ControletBase::pin_token_version(uint64_t token, uint64_t seq) {
  if (token == 0) return;
  auto [it, inserted] = dedup_.try_emplace(token);
  if (inserted) {
    // Nothing is executing here — this is a replication-path pin, not a
    // client request. The failed-shaped entry (done=false, in_flight=false)
    // makes a later client retry re-execute with the pinned version.
    it->second.in_flight = false;
    dedup_order_.push_back(token);
    if (dedup_order_.size() > kDedupWindow) {
      const uint64_t oldest = dedup_order_.front();
      auto oit = dedup_.find(oldest);
      if (oit == dedup_.end() || !oit->second.in_flight) {
        if (oit != dedup_.end()) dedup_.erase(oit);
        dedup_order_.pop_front();
      }
    }
  }
  it->second.seq = std::max(it->second.seq, seq);
}

void ControletBase::apply_replicated(const KV& kv, bool is_del) {
  observe_version(kv.seq);
  if (is_del) {
    cfg_.datalet->del(kv.key, kv.seq);
  } else {
    cfg_.datalet->put_if_newer(kv.key, kv.value, kv.seq);
  }
}

void ControletBase::report_failure(const Addr& suspect) {
  Message m;
  m.op = Op::kReportFailure;
  m.key = suspect;
  rt_->send(cfg_.coordinator, std::move(m));
}

void ControletBase::start_recovery(const Addr& source) {
  Message req;
  req.op = Op::kSnapshotReq;
  rt_->call(source, std::move(req),
            [this](Status s, Message rep) {
              if (!s.ok() || rep.code != Code::kOk) {
                LOG_WARN << rt_->self() << ": snapshot pull failed: "
                         << s.to_string();
                return;
              }
              for (const auto& kv : rep.kvs) {
                cfg_.datalet->put_if_newer(kv.key, kv.value, kv.seq);
                observe_version(kv.seq);
              }
              observe_version(rep.seq);
              Message done;
              done.op = Op::kRecoveryDone;
              done.key = rt_->self();
              done.shard = cfg_.shard;
              rt_->send(cfg_.coordinator, std::move(done));
              LOG_INFO << rt_->self() << ": recovery complete ("
                       << rep.kvs.size() << " entries)";
            },
            cfg_.rpc_timeout_us * 4);
}

void ControletBase::enter_old_side_transition(const Addr& successor) {
  successor_ = successor;
  drain_reported_ = false;
  begin_drain();
  drain_timer_ = rt_->set_periodic(cfg_.drain_poll_us, [this] { poll_drain(); });
}

void ControletBase::poll_drain() {
  if (drain_reported_ || !drained()) return;
  drain_reported_ = true;
  rt_->cancel_timer(drain_timer_);
  drain_timer_ = 0;
  Message done;
  done.op = Op::kTransitionDone;
  done.key = rt_->self();
  done.shard = cfg_.shard;
  rt_->send(cfg_.coordinator, std::move(done));
}

bool ControletBase::maybe_p2p_forward(const Addr& from, const Message& req,
                                      Replier& reply, bool is_read) {
  if (!cfg_.p2p_forwarding || (req.flags & kFlagTransition) != 0) return false;
  std::string routing_key = req.table;
  if (!routing_key.empty()) routing_key.push_back('\x1f');
  routing_key += req.key;
  auto sid = map_.shard_for(routing_key);
  if (!sid.ok()) return false;

  Addr target;
  const bool strong =
      req.consistency == ConsistencyLevel::kStrong ||
      (req.consistency == ConsistencyLevel::kDefault &&
       map_.consistency == Consistency::kStrong);
  if (is_read) {
    auto t = map_.read_target(routing_key, rt_->rng().next(), strong);
    if (!t.ok()) return false;
    target = t.value();
  } else {
    auto t = map_.write_target(routing_key, rt_->rng().next());
    if (!t.ok()) return false;
    target = t.value();
  }
  if (target == rt_->self()) return false;  // it's genuinely ours
  // Reads this controlet can serve locally stay local (EC read at a replica).
  if (is_read && !strong && sid.value() == cfg_.shard && in_shard()) {
    return false;
  }
  (void)from;
  c_forwards_->inc();
  Message fwd = req;
  fwd.trace = TraceContext{};  // re-parent the hop on this dispatch
  rt_->call(target, std::move(fwd),
            [reply](Status s, Message rep) {
              reply(s.ok() ? std::move(rep)
                           : Message::reply(Code::kUnavailable));
            },
            cfg_.rpc_timeout_us * 2);
  return true;
}

bool ControletBase::maybe_dedup(const Message& req, Replier& reply) {
  auto it = dedup_.find(req.token);
  if (it != dedup_.end()) {
    c_dedup_hits_->inc();
    if (it->second.done) {
      reply(it->second.rep);  // replay: serve the original outcome verbatim
      return true;
    }
    if (it->second.in_flight) {
      // The original attempt is still in flight (e.g. a duplicated request
      // frame, or a very eager retry): park this replier; it completes with
      // the same outcome as the original.
      it->second.waiters.push_back(std::move(reply));
      return true;
    }
    // The original attempt failed with a routing/availability outcome: the
    // retry re-executes against the current layout. The entry (and its
    // pinned version) survives so the write keeps its original LWW slot —
    // minting a fresh version here would reorder it after writes that
    // landed since the first attempt, resurrecting a stale value.
    it->second.in_flight = true;
  } else {
    // First sighting: record in-flight so the outcome is remembered for
    // future replays of this token.
    dedup_order_.push_back(req.token);
    if (dedup_order_.size() > kDedupWindow) {
      const uint64_t oldest = dedup_order_.front();
      auto oit = dedup_.find(oldest);
      if (oit == dedup_.end() || !oit->second.in_flight) {
        if (oit != dedup_.end()) dedup_.erase(oit);
        dedup_order_.pop_front();
      }
      // An in-flight head is left alone; the window transiently exceeds its
      // bound by the in-flight count instead of forgetting a live request.
    }
    dedup_[req.token] = DedupEntry{};
  }
  const uint64_t token = req.token;
  Replier inner = std::move(reply);
  reply = [this, token, inner = std::move(inner)](Message rep) {
    auto dit = dedup_.find(token);
    if (dit != dedup_.end()) {
      std::vector<Replier> waiters = std::move(dit->second.waiters);
      // Routing/availability outcomes must not be replayed after the
      // topology changes underneath the token — mark the entry failed and
      // let the retry re-execute (with the pinned version) against the new
      // layout.
      const bool cacheable = rep.code != Code::kNotLeader &&
                             rep.code != Code::kUnavailable &&
                             rep.code != Code::kTimeout &&
                             rep.code != Code::kWrongShard;
      dit->second.in_flight = false;
      if (cacheable) {
        dit->second.done = true;
        dit->second.rep = rep;
      }
      for (auto& w : waiters) w(rep);
    }
    inner(std::move(rep));
  };
  return false;
}

bool ControletBase::admit_ingress(const Message& req, uint64_t backlog_us,
                                  uint64_t* retry_after_us) {
  if (!admission_.enabled()) return true;
  switch (req.op) {
    case Op::kPut:
    case Op::kDel:
    case Op::kGet:
    case Op::kScan:
      break;  // client data ops are sheddable
    default:
      return true;  // replication/control traffic must flow under overload
  }
  return !admission_.should_shed(backlog_us, retry_after_us);
}

bool ControletBase::admit(Replier& reply) {
  if (!admission_.enabled()) return true;
  uint64_t hint = 0;
  // Backlog 0, not rt_->queue_backlog_us(): the ingress gate
  // (admit_ingress) already vetted this op against the queue backlog at
  // arrival, and by handler time the op has *traversed* that queue — its
  // wait is sunk cost, and the queue behind it is younger ops' problem.
  // Re-charging the refilled backlog here would shed nearly every op that
  // was admitted at a busy-but-acceptable instant, after its service cost
  // was already paid. This gate bounds the inflight set and the EMA-
  // predicted remaining wait only.
  if (!admission_.admit(0, &hint)) {
    // Shed at entry: one cheap reply instead of a replication fan-out. The
    // retry-after hint rides in `seq`; the client backs off at least that
    // long and skips the map refresh (client.cc).
    Message rep = Message::reply(Code::kOverloaded, "admission shed");
    rep.seq = hint;
    // Map epoch rides along: a client whose map is older than ours may be
    // hammering a shard that a migration already shrank — it should refresh
    // and re-route instead of honoring the backoff hint (client.cc).
    rep.epoch = map_.epoch;
    reply(std::move(rep));
    return false;
  }
  const uint64_t t0 = rt_->now_us();
  Replier inner = std::move(reply);
  reply = [this, t0, inner = std::move(inner)](Message rep) {
    admission_.complete(rt_->now_us(), t0);
    inner(std::move(rep));
  };
  return true;
}

void ControletBase::filter_expired_reply(const Message& req, Message& rep) {
  const uint64_t now = rt_->now_us();
  if (req.op == Op::kGet && rep.code == Code::kOk) {
    if (ttl::expired(rep.value, now)) {
      // Lazily reclaim: each replica deletes on its own clock, and because
      // the expiry instant is absolute and replicated inside the value, all
      // replicas agree on when the key stops existing.
      std::string pk = req.table;
      if (!pk.empty()) pk.push_back('\x1f');
      pk += req.key;
      cfg_.datalet->del(pk, rep.seq);
      c_expired_->inc();
      rep = Message::reply(Code::kNotFound, "expired");
    } else if (ttl::is_enveloped(rep.value)) {
      rep.value = std::string(ttl::payload(rep.value));
    }
    return;
  }
  if (req.op == Op::kScan && rep.code == Code::kOk && !rep.kvs.empty()) {
    std::string prefix = req.table;
    if (!prefix.empty()) prefix.push_back('\x1f');
    size_t out = 0;
    for (size_t i = 0; i < rep.kvs.size(); ++i) {
      KV& kv = rep.kvs[i];
      if (ttl::expired(kv.value, now)) {
        cfg_.datalet->del(prefix + kv.key, kv.seq);
        c_expired_->inc();
        continue;
      }
      if (ttl::is_enveloped(kv.value)) {
        kv.value = std::string(ttl::payload(kv.value));
      }
      if (out != i) rep.kvs[out] = std::move(kv);
      ++out;
    }
    rep.kvs.resize(out);
  }
}

Message ControletBase::apply_local_read(const Message& req) {
  Message rep = apply_local(req);
  filter_expired_reply(req, rep);
  return rep;
}

void ControletBase::sweep_expired() {
  if (cfg_.datalet == nullptr) return;
  const uint64_t now = rt_->now_us();
  // Collect first: engines may not tolerate deletion mid-iteration.
  std::vector<std::pair<std::string, uint64_t>> doomed;
  cfg_.datalet->for_each([&](std::string_view key, const Entry& e) {
    if (ttl::expired(e.value, now)) doomed.emplace_back(std::string(key), e.seq);
  });
  for (const auto& [key, seq] : doomed) {
    cfg_.datalet->del(key, seq);
    c_expired_->inc();
  }
}

void ControletBase::do_read(EventContext ctx) {
  ctx.reply(apply_local_read(ctx.req));
}

void ControletBase::handle_internal(const Addr&, Message, Replier reply) {
  reply(Message::reply(Code::kInvalid));
}

void ControletBase::handle(const Addr& from, Message req, Replier reply) {
  switch (req.op) {
    case Op::kPut:
    case Op::kDel: {
      if (retired_) {
        reply(Message::reply(Code::kNotLeader));
        return;
      }
      if (catching_up_) {
        reply(Message::reply(Code::kUnavailable, "catching up"));
        return;
      }
      if (successor_.has_value()) {
        // Old side of a transition: forward the write to the successor,
        // which already implements the target topology/consistency (§V).
        Message fwd = req;
        fwd.flags |= kFlagTransition;
        fwd.trace = TraceContext{};  // re-parent the hop on this dispatch
        rt_->call(*successor_, std::move(fwd),
                  [reply](Status s, Message rep) {
                    reply(s.ok() ? std::move(rep)
                                 : Message::reply(Code::kUnavailable));
                  },
                  cfg_.rpc_timeout_us * 2);
        return;
      }
      if (maybe_p2p_forward(from, req, reply, /*is_read=*/false)) return;
      std::string rkey = req.table;
      if (!rkey.empty()) rkey.push_back('\x1f');
      rkey += req.key;
      if (reject_wrong_shard(rkey, reply)) return;
      if (!admit(reply)) return;
      if (req.op == Op::kPut && req.ttl_ms > 0) {
        // Stamp the absolute expiry at admission; downstream replication and
        // durability carry the envelope as opaque bytes (ttl.h).
        req.value = ttl::encode(
            req.value, rt_->now_us() + uint64_t(req.ttl_ms) * 1000);
        req.ttl_ms = 0;
      }
      if (in_shard_ && write_fenced()) {
        // Lease lapsed: we may already have been deposed without hearing it
        // (partitioned from the coordinator). Self-fence — kNotLeader sends
        // the client to refresh its map and find the real master.
        c_lease_fenced_->inc();
        reply(Message::reply(Code::kNotLeader, "lease expired"));
        return;
      }
      if (req.token != 0 && maybe_dedup(req, reply)) return;
      // Inside the open dual-write window, an acked mutation of the moving
      // range must land at the dest before the client sees kOk.
      arm_dual_write(req, rkey, reply);
      note_data_op(rkey);
      c_writes_->inc();
      EventContext ctx{from, std::move(req), std::move(reply)};
      if (!bus_.emit(ctx.req.op == Op::kPut ? "PUT" : "DEL", ctx)) {
        do_write(std::move(ctx));
      }
      return;
    }

    case Op::kGet:
    case Op::kScan: {
      if (retired_) {
        reply(Message::reply(Code::kNotLeader));
        return;
      }
      if (catching_up_) {
        reply(Message::reply(Code::kUnavailable, "catching up"));
        return;
      }
      if (req.op == Op::kGet &&
          maybe_p2p_forward(from, req, reply, /*is_read=*/true)) {
        return;
      }
      if (req.op == Op::kGet) {
        std::string rkey = req.table;
        if (!rkey.empty()) rkey.push_back('\x1f');
        rkey += req.key;
        if (reject_wrong_shard(rkey, reply)) return;
        note_data_op(rkey);
      }
      if (!admit(reply)) return;
      if (in_shard_ && read_fenced(req)) {
        // A strong read served past the lease could be stale: the chain may
        // already have been repaired around us.
        c_lease_fenced_->inc();
        reply(Message::reply(Code::kNotLeader, "lease expired"));
        return;
      }
      c_reads_->inc();
      EventContext ctx{from, std::move(req), std::move(reply)};
      if (!bus_.emit(ctx.req.op == Op::kGet ? "GET" : "SCAN", ctx)) {
        do_read(std::move(ctx));
      }
      return;
    }

    case Op::kCreateTable:
    case Op::kDeleteTable:
      // Table ops follow the write path so every replica learns of them.
      if (retired_) {
        reply(Message::reply(Code::kNotLeader));
        return;
      }
      reply(apply_local(req));
      return;

    case Op::kSnapshotReq: {
      Message rep = apply_local(req);  // fills kvs from the datalet
      rep.seq = version_;              // carry the version high-water mark
      reply(std::move(rep));
      return;
    }

    case Op::kReconfigure: {
      if ((req.flags & kFlagTransition) != 0 && req.value.empty()) {
        // Transition finished: this (old) controlet is fully replaced.
        retired_ = true;
        successor_.reset();
        reply(Message::reply(Code::kOk));
        return;
      }
      auto m = ShardMap::decode(req.value);
      if (!m.ok()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      if ((req.flags & kFlagRecovery) != 0) {
        // Standby activation: adopt the map, pull a snapshot, then report.
        // strs layout matches apply_map's aux: [dlm, sharedlog, source].
        cfg_.shard = req.shard;
        apply_map(m.value(), req.strs);
        if (req.strs.size() >= 3 && !req.strs[2].empty()) {
          start_recovery(req.strs[2]);
        }
        reply(Message::reply(Code::kOk));
        return;
      }
      apply_map(m.value(), req.strs);
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kStartTransition: {
      if ((req.flags & kFlagTransition) != 0) {
        // I am the old controlet: forward new writes, drain, report.
        if (!req.strs.empty()) enter_old_side_transition(req.strs[0]);
        reply(Message::reply(Code::kOk));
        return;
      }
      // I am a new controlet: adopt the (not yet client-visible) target map.
      cfg_.shard = req.shard;
      auto m = ShardMap::decode(req.value);
      if (!m.ok()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      apply_map(m.value(), req.strs);
      // Seed the version counter from the shared datalet so post-transition
      // writes order after every pre-transition write.
      cfg_.datalet->for_each([this](std::string_view, const Entry& e) {
        observe_version(e.seq);
      });
      on_transition_new_side();
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kMigrateStart:
      handle_migrate_start(req, reply);
      return;

    case Op::kMigrateChunk:
    case Op::kMigratePut:
      handle_migrate_ingest(req, reply);
      return;

    case Op::kMigrateFinish:
      handle_migrate_finish(req, reply);
      return;

    case Op::kMigrateAbort:
      // A fresh window (larger epoch) must not be torn down by a stale abort
      // from a previously failed attempt.
      if (mig_.active && req.epoch >= mig_.epoch) {
        LOG_INFO << rt_->self() << ": migration aborted by coordinator";
        mig_ = MigrationOut{};
      }
      reply(Message::reply(Code::kOk));
      return;

    case Op::kHeartbeat:
      reply(Message::reply(Code::kOk));
      return;

    default:
      handle_internal(from, std::move(req), std::move(reply));
  }
}

// ---------------------------------------------------------------------------
// Elastic migration: old-owner dual-write window, background copier, and the
// dest-side ingest path.

bool ControletBase::reject_wrong_shard(const std::string& rkey,
                                       const Replier& reply) {
  // Range maps only: a hash map never moves individual ranges, and bouncing
  // hash traffic here would break the P2P overlay's any-node contract.
  if (!in_shard_ || map_.partitioner != "range") return false;
  auto sid = map_.shard_for(rkey);
  if (!sid.ok() || sid.value() == cfg_.shard) return false;
  ++wrong_shard_rejects_;
  Message rep = Message::reply(Code::kWrongShard, last_delta_enc_);
  rep.epoch = map_.epoch;
  reply(std::move(rep));
  return true;
}

std::vector<Addr> ControletBase::migration_dest() const {
  // Prefer the live map's view of the dest shard (it tracks dest failovers
  // for the boundary-move case); a brand-new shard is not in the map until
  // cutover, so fall back to the static list from kMigrateStart.
  if (const ShardInfo* s = map_.shard(mig_.dest_shard)) {
    std::vector<Addr> out;
    for (const auto& r : s->replicas) out.push_back(r.controlet);
    if (!out.empty()) return out;
  }
  return mig_.dest;
}

void ControletBase::note_data_op(const std::string& rkey) {
  ++ops_since_hb_;
  if (map_.partitioner == "range" && key_sample_.size() < 256) {
    key_sample_.push_back(rkey);
  }
}

void ControletBase::arm_dual_write(const Message& req, const std::string& rkey,
                                   Replier& reply) {
  if (!mig_.active) return;
  if (rkey < mig_.lo || (!mig_.hi.empty() && rkey >= mig_.hi)) return;
  const bool is_del = req.op == Op::kDel;
  Replier inner = std::move(reply);
  reply = [this, rkey, value = req.value, token = req.token, is_del,
           inner = std::move(inner)](Message rep) {
    if (rep.code != Code::kOk) {
      inner(std::move(rep));
      return;
    }
    if (!mig_.active) {
      // The window closed while this write was in flight down the chain.
      // Closed by an abort we still own the range and the chain apply is
      // durable: ack as usual. Closed by the cutover the write landed only
      // on the deposed chain, whose copy of the range is dropped at
      // kMigrateFinish — acking here would lose an acked write. Bounce
      // kWrongShard (with the map delta) so the retry re-executes at the
      // new owner under a fresh post-cutover version.
      auto sid = map_.shard_for(rkey);
      if (map_.partitioner != "range" || !sid.ok() ||
          sid.value() == cfg_.shard) {
        inner(std::move(rep));
        return;
      }
      Message wrong = Message::reply(Code::kWrongShard, last_delta_enc_);
      wrong.epoch = map_.epoch;
      inner(std::move(wrong));
      return;
    }
    const std::vector<Addr> dests = migration_dest();
    if (dests.empty()) {
      inner(std::move(rep));
      return;
    }
    Message fwd;
    fwd.op = Op::kMigratePut;
    fwd.key = rkey;           // already table-prefixed: dest applies raw
    fwd.value = value;        // TTL envelope rides opaquely
    fwd.seq = rep.seq;        // the applied version keeps its LWW slot
    fwd.epoch = mig_.epoch;
    fwd.token = token;
    if (is_del) fwd.flags |= kFlagDelete;
    struct Fanout {
      size_t pending;
      bool conflict = false;
      bool failed = false;
      Message ok_rep;
      Replier inner;
    };
    auto st = std::make_shared<Fanout>();
    st->pending = dests.size();
    st->ok_rep = std::move(rep);
    st->inner = std::move(inner);
    for (const Addr& d : dests) {
      rt_->call(d, fwd,
                [this, st](Status s, Message frep) {
                  if (!s.ok() || frep.code != Code::kOk) {
                    if (s.ok() && frep.code == Code::kConflict) {
                      st->conflict = true;
                    }
                    st->failed = true;
                  }
                  if (--st->pending != 0) return;
                  if (!st->failed) {
                    st->inner(std::move(st->ok_rep));
                  } else if (st->conflict) {
                    // The dest fenced our window epoch: the cutover landed
                    // and we are no longer the owner. The write applied
                    // locally but was never acked; the dest's own (higher-
                    // epoch) state wins under LWW and the client re-routes.
                    Message wrong =
                        Message::reply(Code::kWrongShard, last_delta_enc_);
                    wrong.epoch = map_.epoch;
                    st->inner(std::move(wrong));
                  } else {
                    // Unacked: the retry re-executes with the pinned version.
                    st->inner(Message::reply(Code::kUnavailable,
                                             "dual-write failed"));
                  }
                },
                cfg_.rpc_timeout_us);
    }
  };
}

void ControletBase::handle_migrate_start(const Message& req,
                                         const Replier& reply) {
  if (req.strs.empty() || req.key.empty()) {
    reply(Message::reply(Code::kInvalid));
    return;
  }
  auto m = ShardMap::decode(req.strs[0]);
  if (!m.ok()) {
    reply(Message::reply(Code::kInvalid));
    return;
  }
  // The window epoch rides inside the message instead of a separate map push
  // so no replica can observe the dual-write order before the epoch that
  // fences it. Empty aux keeps the existing DLM/shared-log bindings.
  apply_map(m.value(), {});
  mig_ = MigrationOut{};
  mig_.active = true;
  mig_.lo = req.key;
  mig_.hi = req.value;
  mig_.dest_shard = req.shard;
  mig_.epoch = req.epoch;
  mig_.cursor = req.key;
  for (size_t i = 1; i < req.strs.size(); ++i) mig_.dest.push_back(req.strs[i]);
  mig_.copier = (req.flags & kFlagCopier) != 0;
  if (mig_.copier) {
    prepare_migration_copy([this, epoch = mig_.epoch](bool ok) {
      if (!mig_.active || mig_.epoch != epoch) return;  // window closed
      if (!ok) {
        // Local image cannot be proven complete (e.g. shared-log drain
        // failed): never report ready; the coordinator times out and aborts.
        LOG_WARN << rt_->self() << ": migration copy prepare failed";
        return;
      }
      if (mig_timer_ == 0) {
        mig_timer_ = rt_->set_periodic(cfg_.migrate_copy_period_us,
                                       [this] { migrate_copy_tick(); });
      }
    });
  }
  LOG_INFO << rt_->self() << ": dual-write window open for [" << mig_.lo
           << ", " << (mig_.hi.empty() ? "+inf" : mig_.hi) << ") -> shard "
           << mig_.dest_shard << (mig_.copier ? " (copier)" : "");
  reply(Message::reply(Code::kOk));
}

void ControletBase::handle_migrate_ingest(const Message& req,
                                          const Replier& reply) {
  // Dest side. The epoch fence is what makes the handoff safe: a chunk or
  // forwarded write minted under a pre-cutover window epoch dies here with
  // kConflict once the cutover bumped our map past it.
  if (reject_stale_epoch(req, reply)) return;
  if (cfg_.datalet == nullptr) {
    reply(Message::reply(Code::kUnavailable));
    return;
  }
  if (req.op == Op::kMigratePut) {
    if (req.token != 0) pin_token_version(req.token, req.seq);
    apply_replicated(KV{req.key, req.value, req.seq},
                     (req.flags & kFlagDelete) != 0);
  } else {
    // First chunk carries the old owner's dedup pins as "token:seq" strings
    // so client retries that land here after cutover keep their LWW slots.
    for (const std::string& p : req.strs) {
      const size_t colon = p.find(':');
      if (colon == std::string::npos) continue;
      const uint64_t tok = std::strtoull(p.substr(0, colon).c_str(), nullptr, 10);
      const uint64_t seq = std::strtoull(p.substr(colon + 1).c_str(), nullptr, 10);
      pin_token_version(tok, seq);
    }
    for (const KV& kv : req.kvs) apply_replicated(kv, false);
  }
  reply(Message::reply(Code::kOk));
}

void ControletBase::migrate_copy_tick() {
  if (!mig_.active || !mig_.copier) {
    if (mig_timer_ != 0) rt_->cancel_timer(mig_timer_);
    mig_timer_ = 0;
    return;
  }
  if (mig_.chunk_inflight) return;
  if (mig_.copy_done) {
    // Re-send until the cutover (or an abort) closes the window: the ready
    // may have raced a coordinator crash. The coordinator's phase check
    // makes duplicates harmless.
    send_migrate_ready();
    return;
  }
  // Next batch: the smallest still-uncopied keys of the moving range. The
  // full scan per tick is O(n) but runs at sim/bench scale; a production
  // engine would expose an ordered cursor instead.
  std::vector<KV> elig;
  cfg_.datalet->for_each([&](std::string_view key, const Entry& e) {
    if (key < mig_.cursor) return;
    if (!mig_.hi.empty() && key >= mig_.hi) return;
    elig.push_back(KV{std::string(key), e.value, e.seq});
  });
  if (elig.empty()) {
    if (!mig_.redrained) {
      // Close the start-of-window race: drain the backend once more (a no-op
      // for MS, a shared-log catch-up for AA+EC) and rescan from the bottom.
      // Chunks are idempotent (LWW at the dest), so the rescan is safe.
      mig_.redrained = true;
      mig_.chunk_inflight = true;
      prepare_migration_copy([this, epoch = mig_.epoch](bool ok) {
        if (!mig_.active || mig_.epoch != epoch) return;
        mig_.chunk_inflight = false;
        if (!ok) {
          mig_.redrained = false;  // retry; the coordinator timeout backstops
          return;
        }
        mig_.cursor = mig_.lo;
      });
      return;
    }
    mig_.copy_done = true;
    send_migrate_ready();
    return;
  }
  std::sort(elig.begin(), elig.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  if (elig.size() > cfg_.migrate_batch) elig.resize(cfg_.migrate_batch);

  Message chunk;
  chunk.op = Op::kMigrateChunk;
  chunk.shard = mig_.dest_shard;
  chunk.epoch = mig_.epoch;
  chunk.kvs = elig;
  if (!mig_.pins_sent) {
    for (const auto& [tok, entry] : dedup_) {
      if (entry.seq != 0) {
        chunk.strs.push_back(std::to_string(tok) + ":" +
                             std::to_string(entry.seq));
      }
    }
  }
  const std::vector<Addr> dests = migration_dest();
  if (dests.empty()) return;
  struct Fanout {
    size_t pending;
    bool failed = false;
    bool conflict = false;
  };
  auto st = std::make_shared<Fanout>();
  st->pending = dests.size();
  mig_.chunk_inflight = true;
  const std::string last_key = elig.back().key;
  const size_t n = elig.size();
  for (const Addr& d : dests) {
    rt_->call(d, chunk,
              [this, st, last_key, n, epoch = mig_.epoch](Status s,
                                                          Message rep) {
                if (!s.ok() || rep.code != Code::kOk) {
                  st->failed = true;
                  if (s.ok() && rep.code == Code::kConflict) {
                    st->conflict = true;
                  }
                }
                if (--st->pending != 0) return;
                if (!mig_.active || mig_.epoch != epoch) return;
                mig_.chunk_inflight = false;
                if (st->conflict) {
                  // Fenced: the cutover already landed (or a newer window
                  // opened). Stop copying; kMigrateFinish will clean up.
                  mig_.copier = false;
                  return;
                }
                if (st->failed) return;  // retry the same batch next tick
                mig_copied_ += n;
                mig_.pins_sent = true;
                mig_.cursor = last_key + '\0';  // smallest key > last_key
              },
              cfg_.rpc_timeout_us);
  }
}

void ControletBase::send_migrate_ready() {
  Message m;
  m.op = Op::kMigrateReady;
  m.key = rt_->self();
  m.shard = cfg_.shard;
  m.epoch = mig_.epoch;
  rt_->send(cfg_.coordinator, std::move(m));
}

void ControletBase::handle_migrate_finish(const Message& req,
                                          const Replier& reply) {
  // The post-cutover map rides along so even a replica that missed the
  // reconfigure learns the new layout atomically with the drop order.
  if (!req.strs.empty()) {
    auto m = ShardMap::decode(req.strs[0]);
    if (m.ok()) apply_map(m.value(), {});
  }
  mig_ = MigrationOut{};
  if (cfg_.datalet != nullptr) {
    // GC the moved range: every key in [lo, hi) the fresh map no longer
    // routes here. The routing re-check makes a duplicated finish safe.
    std::vector<std::pair<std::string, uint64_t>> doomed;
    cfg_.datalet->for_each([&](std::string_view key, const Entry& e) {
      if (key < req.key) return;
      if (!req.value.empty() && key >= req.value) return;
      std::string k(key);
      auto sid = map_.shard_for(k);
      if (sid.ok() && sid.value() == cfg_.shard) return;  // still ours
      doomed.emplace_back(std::move(k), e.seq);
    });
    for (const auto& [k, seq] : doomed) cfg_.datalet->del(k, seq);
    if (!doomed.empty()) {
      LOG_INFO << rt_->self() << ": dropped " << doomed.size()
               << " migrated keys";
    }
  }
  reply(Message::reply(Code::kOk));
}

}  // namespace bespokv
