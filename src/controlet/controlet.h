// ControletBase: common distributed-management machinery for all pre-built
// controlets (§III-B). Subclasses implement one topology+consistency
// combination each (ms_sc / ms_ec / aa_sc / aa_ec) by registering extended
// event handlers (events.h) and overriding the internal-op hooks.
//
// The base class provides: shard-map tracking (pull at start + kReconfigure
// push), heartbeats to the coordinator, recovery (snapshot pull on standby
// activation), retirement, per-request consistency plumbing, and the §V
// transition protocol (old side: forward-and-drain; new side: adopt the
// target map before the coordinator swaps it in).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/controlet/admission.h"
#include "src/controlet/events.h"
#include "src/coordinator/cluster_meta.h"
#include "src/datalet/service.h"
#include "src/dlm/dlm.h"
#include "src/net/runtime.h"
#include "src/sharedlog/sharedlog.h"

namespace bespokv {

struct ControletConfig {
  Addr coordinator;
  uint32_t shard = 0;
  std::shared_ptr<Datalet> datalet;        // local engine (1:1 mapping)
  // P2P-style topology overlay (§IV-E): when set, a controlet receiving a
  // request for a key it does not own routes it to the owning controlet
  // (finger-table-like lookup through the shard map) instead of bouncing the
  // client with kNotLeader. Clients may then contact *any* controlet.
  bool p2p_forwarding = false;
  uint64_t hb_period_us = 500'000;         // heartbeat cadence
  uint64_t flush_period_us = 2'000;        // MS+EC propagation batching
  uint32_t flush_batch = 128;              // MS+EC max batch size
  uint64_t log_fetch_period_us = 2'000;    // AA+EC shared-log poll cadence
  uint64_t drain_poll_us = 2'000;          // transition drain poll cadence
  uint64_t rpc_timeout_us = 500'000;       // intra-cluster RPC deadline
  // Admission control / load shedding for client data ops (admission.h).
  // max_inflight == 0 leaves the gate off; internal replication traffic is
  // never shed.
  AdmissionConfig admission;
  // Cache-tier background TTL sweep cadence: each tick deletes locally
  // expired envelopes (ttl.h) from the datalet. 0 disables; lazy expiry at
  // the read paths stays on regardless.
  uint64_t ttl_sweep_period_us = 0;
  // Elastic migration: background copier tick cadence and max keys shipped
  // per kMigrateChunk while the dual-write window is open.
  uint64_t migrate_copy_period_us = 2'000;
  uint32_t migrate_batch = 64;
};

class ControletBase : public Service {
 public:
  explicit ControletBase(ControletConfig cfg);

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;
  // Reactor-level load shedding (see Runtime/Service::admit_ingress): sheds
  // client data ops when the admission controller predicts a blown deadline;
  // replication and control traffic is never shed.
  bool admit_ingress(const Message& req, uint64_t backlog_us,
                     uint64_t* retry_after_us) override;

  // Introspection for tests.
  const ShardMap& shard_map() const { return map_; }
  bool is_retired() const { return retired_; }
  bool in_transition() const { return successor_.has_value(); }
  size_t my_index() const { return my_index_; }
  Datalet* datalet() { return cfg_.datalet.get(); }
  // Mastership-lease deadline on this node's clock (0 = never granted /
  // self-fenced) and the count of stale-epoch internal ops bounced here.
  uint64_t lease_until() const { return lease_until_; }
  uint64_t fence_rejects() const { return fence_rejects_; }
  bool lease_valid() const;
  // Live migration introspection: dual-write window open / keys copied out.
  bool migrating() const { return mig_.active; }
  uint64_t migrate_copied() const { return mig_copied_; }
  uint64_t wrong_shard_rejects() const { return wrong_shard_rejects_; }

 protected:
  // ---- hooks for the concrete controlets -----------------------------------

  // Client data-path ops (kPut/kDel). `version` is a fresh monotonic version
  // assigned by the base. Must eventually complete ctx.reply.
  virtual void do_write(EventContext ctx) = 0;
  // Client reads (kGet/kScan). Default: serve from the local datalet.
  virtual void do_read(EventContext ctx);
  // Internal ops not understood by the base (kChainPut, ...).
  virtual void handle_internal(const Addr& from, Message req, Replier reply);
  // Role/topology changed (new shard map applied).
  virtual void on_reconfigured() {}
  // Transition (old side): flush buffered state before reporting drained.
  virtual void begin_drain() {}
  // Transition (old side): true once no buffered/in-flight work remains.
  virtual bool drained() const { return inflight_ == 0; }
  // Transition (new side): the target map was adopted; catch up if needed.
  virtual void on_transition_new_side() {}
  // Crash-restart catch-up: resync local state from `source` (the chain
  // predecessor under MS) before serving again. Default: snapshot pull with
  // LWW application; a durably-recovered engine passes its durable_seq as the
  // floor so the peer ships only the post-crash suffix. AA+EC overrides this
  // to replay the shared log instead — the log, not any single peer, is the
  // authoritative write order there.
  virtual void catchup_from(const Addr& source, std::function<void(bool)> done);
  // Sequence number below which this replica's state is durable (carried on
  // heartbeats; the coordinator min-aggregates it across replicas to drive
  // shared-log truncation). 0 = nothing durable / not applicable.
  virtual uint64_t durable_watermark() const { return 0; }
  // Migration copier: called once before the background copy starts so the
  // controlet can force its local image up to date with everything it has
  // acked. Matters under AA+EC, where acked writes live in the shared log
  // ahead of the local poll cursor — the snapshot stream must include them
  // or the dest provably misses acked data. Base: local state is already
  // complete (writes apply locally before the ack under MS/AA+SC).
  virtual void prepare_migration_copy(std::function<void(bool)> done) {
    done(true);
  }

  // ---- services for the concrete controlets --------------------------------

  bool i_am(size_t index) const { return in_shard_ && my_index_ == index; }
  bool in_shard() const { return in_shard_; }
  // True between a crash-restart and the completed resync; client data ops
  // are refused with kUnavailable while set (internal replication still
  // applies, so the node keeps converging during the catch-up).
  bool catching_up() const { return catching_up_; }
  bool is_head() const { return i_am(0); }
  bool is_tail() const {
    return in_shard_ && !replicas().empty() && my_index_ == replicas().size() - 1;
  }
  const std::vector<ReplicaInfo>& replicas() const;
  Addr peer(size_t index) const { return replicas()[index].controlet; }

  // Fresh monotonic write version (survives failover via the epoch prefix).
  uint64_t next_version();
  // Keeps next_version() ahead of any externally observed version.
  void observe_version(uint64_t v) { version_ = std::max(version_, v); }

  // Version pinned to an idempotency token on its first execution. A retry
  // of a write whose earlier attempt already applied locally must reuse the
  // original version: re-executing with a fresh next_version() would move
  // the write *after* every write that landed in between, resurrecting the
  // old value under LWW (caught by the verification harness as a
  // linearizability violation). Returns 0 when unknown.
  uint64_t token_version(uint64_t token) const;
  void record_token_version(uint64_t token, uint64_t seq);
  // Passive pin used on the replication path: chain/propagation messages
  // carry the originating token so every replica learns token -> version.
  // After a failover the promoted head then still honors pins for writes
  // whose first attempt reached it, instead of re-versioning the retry.
  void pin_token_version(uint64_t token, uint64_t seq);

  // Applies a client write/read to the local datalet and returns the reply.
  Message apply_local(const Message& req) {
    return DataletHandle::apply(*cfg_.datalet, req);
  }

  // Read-path variant with TTL filtering (cache-tier mode): an expired
  // envelope answers kNotFound (and is lazily deleted); a live one is
  // stripped to its payload. All do_read implementations must serve client
  // GET/SCAN through this, never raw apply_local — an envelope must not
  // escape to a client.
  Message apply_local_read(const Message& req);

  // Applies a replicated entry with LWW semantics.
  void apply_replicated(const KV& kv, bool is_del);

  bool local_has(const std::string& prefixed_key) const {
    return cfg_.datalet->get(prefixed_key).ok();
  }

  // P2P overlay: if the key belongs elsewhere (another shard, or another
  // role within this shard), forwards the request and relays the reply.
  // Returns true if the request was consumed.
  bool maybe_p2p_forward(const Addr& from, const Message& req, Replier& reply,
                         bool is_read);

  void report_failure(const Addr& suspect);

  // ---- partition fencing ---------------------------------------------------

  // True when this node must refuse MS master/chain duties: fencing is on,
  // the map says master-slave, and the coordinator-granted lease has lapsed
  // (we may already have been deposed without hearing about it). AA writes
  // are fenced at the shared sinks (DLM / shared log) instead.
  bool write_fenced() const;
  // Same self-fence applied to strong reads (an MS tail cut off from the
  // coordinator would otherwise serve stale strong reads after the chain
  // shrinks past it).
  bool read_fenced(const Message& req) const;
  // Sink-side epoch fence: rejects an internal replication op minted under
  // an older shard-map epoch with kConflict. Returns true if it replied.
  bool reject_stale_epoch(const Message& req, const Replier& reply);
  // Called when a peer/sink answers kConflict: we are deposed — drop the
  // lease immediately instead of serving out the remaining grant.
  void note_deposed();

  // The node's metrics registry; valid once start() ran. Subclasses cache
  // Counter handles rather than looking names up per request.
  obs::MetricsRegistry& metrics() { return rt_->obs().metrics(); }

  ControletConfig cfg_;
  EventBus bus_;
  ShardMap map_;
  Addr dlm_addr_;
  Addr sharedlog_addr_;
  std::optional<DlmClient> dlm_;
  std::optional<SharedLogClient> sharedlog_;
  uint64_t inflight_ = 0;     // client writes being processed
  uint64_t epoch_seen_ = 0;

 private:
  void apply_map(const ShardMap& m, const std::vector<std::string>& aux);
  void fetch_initial_map();
  void send_heartbeat();
  // Coordinator declared us dead (kConflict heartbeat reply): self-fence and
  // rejoin the standby pool once.
  void handle_deposed();
  void start_recovery(const Addr& source);
  void enter_old_side_transition(const Addr& successor);
  void poll_drain();
  // Restart resync driver: picks the catch-up source from the fresh map (or
  // rejoins as a standby when evicted) and runs catchup_from.
  void begin_catchup();
  void finish_catchup();
  // Admission gate for one client data op: true = admitted, with `reply`
  // wrapped to record completion; false = shed (kOverloaded already sent).
  bool admit(Replier& reply);
  // Deletes every locally expired envelope (background sweep timer).
  void sweep_expired();
  // TTL filter behind apply_local_read.
  void filter_expired_reply(const Message& req, Message& rep);
  // Idempotency-token dedup (client.h). Returns true if the request was
  // consumed (replayed token: cached reply served or waiter queued);
  // otherwise wraps `reply` to record the outcome for future replays.
  bool maybe_dedup(const Message& req, Replier& reply);

  // ---- elastic migration (live range split/rebalance) ----------------------

  // Outbound dual-write window on the old owner: opened by kMigrateStart,
  // closed by kMigrateFinish (cutover) / kMigrateAbort / a map showing the
  // range gone. The head/master additionally runs the background copier.
  struct MigrationOut {
    bool active = false;
    std::string lo;               // moved range [lo, hi); hi "" = +inf
    std::string hi;
    uint32_t dest_shard = 0;
    std::vector<Addr> dest;       // dest controlets from kMigrateStart
    uint64_t epoch = 0;           // dual-write window epoch (fences chunks)
    bool copier = false;
    bool copy_done = false;
    bool chunk_inflight = false;
    bool pins_sent = false;       // dedup pins ride the first chunk
    // After the first full scan the copier re-drains its backend (shared-log
    // catch-up under AA+EC) and rescans once: a write acked by a peer replica
    // in the instant before that peer's dual-write window opened may have been
    // log-sequenced past the initial drain point, so it is only visible here.
    bool redrained = false;
    std::string cursor;           // next key the copier ships
  };

  // True when the request was consumed with a kWrongShard reply: the key is
  // range-routed to another shard (a migration moved it). The reply carries
  // the current epoch and the latest map delta so the client can patch its
  // map without a coordinator round trip.
  bool reject_wrong_shard(const std::string& rkey, const Replier& reply);
  // Wraps `reply` so an acked write inside the open window is forwarded to
  // every dest replica before the client sees kOk (dual-write).
  void arm_dual_write(const Message& req, const std::string& rkey,
                      Replier& reply);
  void handle_migrate_start(const Message& req, const Replier& reply);
  void handle_migrate_ingest(const Message& req, const Replier& reply);
  void handle_migrate_finish(const Message& req, const Replier& reply);
  void migrate_copy_tick();
  void send_migrate_ready();
  std::vector<Addr> migration_dest() const;
  // Samples a served key + counts the op for the heartbeat load report.
  void note_data_op(const std::string& rkey);

  // Request counters ("controlet.*"), cached from the registry in start().
  obs::Counter* c_writes_ = nullptr;
  obs::Counter* c_reads_ = nullptr;
  obs::Counter* c_forwards_ = nullptr;
  obs::Counter* c_dedup_hits_ = nullptr;
  obs::Counter* c_catchups_ = nullptr;
  obs::Counter* c_lease_fenced_ = nullptr;
  obs::Counter* c_epoch_fenced_ = nullptr;
  obs::Counter* c_expired_ = nullptr;

  AdmissionController admission_;

  // Dedup window: token -> outcome (or in-flight waiters). FIFO-evicted at
  // kDedupWindow completed entries; wiped on restart (per-incarnation — a
  // replay after restart re-applies, which LWW versioning keeps safe).
  // Entries have three states: in-flight (replays park as waiters), done
  // (replays get the cached reply), and failed (done=false, in_flight=false:
  // a routing/availability outcome that must not be replayed — the retry
  // re-executes, reusing the pinned `seq` so it keeps its LWW slot).
  struct DedupEntry {
    bool done = false;
    bool in_flight = true;
    uint64_t seq = 0;  // version pinned by the write path (0 = none yet)
    Message rep;
    std::vector<Replier> waiters;  // replays arriving while in flight
  };
  static constexpr size_t kDedupWindow = 4096;
  std::unordered_map<uint64_t, DedupEntry> dedup_;
  std::deque<uint64_t> dedup_order_;

  MigrationOut mig_;
  uint64_t mig_timer_ = 0;
  uint64_t mig_copied_ = 0;            // keys shipped via kMigrateChunk
  uint64_t wrong_shard_rejects_ = 0;
  std::string last_delta_enc_;         // newest map delta, for kWrongShard
  // Heartbeat load report: ops since the last beat and a key sample whose
  // median seeds the coordinator's hot-shard auto-split.
  uint64_t ops_since_hb_ = 0;
  std::vector<std::string> key_sample_;

  bool in_shard_ = false;
  bool retired_ = false;
  bool started_once_ = false;
  bool catching_up_ = false;
  bool map_fetch_inflight_ = false;  // coalesces kGetShardMap pulls
  bool rejoining_ = false;       // deposed; standby re-registration in flight
  size_t my_index_ = 0;
  uint64_t version_ = 0;
  uint64_t lease_until_ = 0;     // mastership lease deadline (0 = none)
  uint64_t fence_rejects_ = 0;   // stale-epoch internal ops bounced here
  std::optional<Addr> successor_;   // old side of a transition
  bool drain_reported_ = false;
  uint64_t hb_timer_ = 0;
  uint64_t drain_timer_ = 0;
  uint64_t ttl_timer_ = 0;
  static const std::vector<ReplicaInfo> kNoReplicas;
};

// Factory for the four pre-built controlets (§IV).
std::shared_ptr<ControletBase> make_controlet(Topology topology,
                                              Consistency consistency,
                                              ControletConfig cfg);

}  // namespace bespokv
