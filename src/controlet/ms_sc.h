// MS+SC controlet: Master-Slave topology with Strong Consistency via chain
// replication (§IV-A, Fig. 3). Puts enter the head, are applied locally and
// forwarded hop by hop to the tail; acks flow back up the chain and the head
// responds to the client (CRAQ-style head response). Strong reads are served
// at the tail; per-request eventual reads (§IV-C) at any replica.
#pragma once

#include "src/controlet/controlet.h"

namespace bespokv {

class MsScControlet : public ControletBase {
 public:
  explicit MsScControlet(ControletConfig cfg);

  uint64_t chain_writes() const { return chain_writes_; }

 protected:
  void do_write(EventContext ctx) override;
  void do_read(EventContext ctx) override;
  void handle_internal(const Addr& from, Message req, Replier reply) override;
  bool drained() const override { return inflight_ == 0; }

 private:
  // Applies `w` locally and forwards it to the next chain node; `done` fires
  // with the final chain status once the suffix has acknowledged.
  void apply_and_forward(Message w, std::function<void(Code)> done);

  uint64_t chain_writes_ = 0;
};

}  // namespace bespokv
