#include "src/verify/runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "src/cluster/cluster.h"
#include "src/client/client.h"
#include "src/common/fencing.h"
#include "src/common/rng.h"
#include "src/net/fault.h"
#include "src/net/sim_fabric.h"
#include "src/storage/env.h"
#include "src/workload/workload.h"

namespace bespokv::verify {

namespace {

// Shared mutable state between the recording clients and the drive loop.
// The sim fabric executes everything on the driving thread, so no locking.
struct Recorder {
  History hist;
  int outstanding = 0;
};

OpKind to_kind(OpType t) {
  switch (t) {
    case OpType::kPut:
      return OpKind::kPut;
    case OpType::kGet:
      return OpKind::kGet;
    case OpType::kDel:
      return OpKind::kDel;
    case OpType::kScan:
      return OpKind::kScan;
  }
  return OpKind::kGet;
}

// Spawns one verification client node: connects a KvClient, then issues
// `ops_per_client` workload ops back to back (gap_us apart), recording every
// invocation/response into the shared history. Writes use globally unique
// values ("c<client>.<n>") so the checkers can attribute every observation
// to exactly one write.
void spawn_client(SimFabric& sim, const Scenario& sc, const Addr& coordinator,
                  uint32_t id, std::shared_ptr<Recorder> rec) {
  SimNodeOpts copts;
  copts.is_client = true;
  const Addr addr = "verify/c" + std::to_string(id);
  Runtime* rt = sim.add_node(
      addr,
      std::make_shared<LambdaService>(
          [](Runtime&, const Addr&, Message, Replier r) {
            r(Message::reply(Code::kInvalid));
          }),
      copts);

  ClientConfig ccfg;
  ccfg.coordinator = coordinator;
  ccfg.rpc_timeout_us = 250'000;
  ccfg.retries = 8;
  // Staggered per-client refresh cadence: after a failover, clients pick up
  // the new map at different instants, so the history interleaves fresh- and
  // stale-map traffic — exactly the mix a fencing bug needs to be visible.
  ccfg.map_refresh_period_us = 200'000 + 150'000 * uint64_t(id);
  // Give up (kUnavailable) rather than block forever if this client sits in
  // a partition island from birth; a background retry resumes on heal.
  ccfg.connect_deadline_us = 2'000'000;
  // EC sessions: pin reads so monotonic-reads is a promise worth checking.
  ccfg.sticky_reads = sc.consistency == Consistency::kEventual;
  auto kv = std::make_shared<KvClient>(rt, ccfg);

  auto gen = std::make_shared<WorkloadGenerator>(sc.workload, id);
  auto bug_rng = std::make_shared<Rng>(sc.seed * 31 + id * 7 + 1);
  auto cache = std::make_shared<std::map<std::string, std::string>>();
  auto remaining = std::make_shared<int>(sc.ops_per_client);
  auto seq = std::make_shared<int>(0);

  ++rec->outstanding;
  sim.post_to(addr, [=, &sc] {
    kv->connect([=, &sc](Status) {
      auto step = std::make_shared<std::function<void()>>();
      *step = [=, &sc] {
        if (--*remaining < 0) {
          --rec->outstanding;
          return;
        }
        const WorkloadOp wop = gen->next();
        const int n = (*seq)++;
        Op op;
        op.client = id;
        op.kind = to_kind(wop.type);
        op.key = wop.key;
        op.inv = rt->now_us();
        const uint64_t gap = sc.gap_us;
        auto next = [rt, step, gap] { rt->set_timer(gap, *step); };
        switch (wop.type) {
          case OpType::kPut: {
            op.value = "c" + std::to_string(id) + "." + std::to_string(n);
            const std::string val = op.value;
            kv->put(wop.key, val, [=](Status s) mutable {
              if (s.ok()) {
                op.res = rt->now_us();
              } else if (s.code() == Code::kMaybeApplied) {
                op.outcome = Outcome::kMaybe;  // res stays "no response"
              } else {
                op.outcome = Outcome::kFailed;
                op.res = rt->now_us();
              }
              rec->hist.record(std::move(op));
              next();
            });
            break;
          }
          case OpType::kDel: {
            kv->del(wop.key, [=](Status s) mutable {
              // Deleting an absent key is still a successful write of
              // "absent" — record kNotFound as applied.
              if (s.ok() || s.code() == Code::kNotFound) {
                op.res = rt->now_us();
              } else if (s.code() == Code::kMaybeApplied) {
                op.outcome = Outcome::kMaybe;
              } else {
                op.outcome = Outcome::kFailed;
                op.res = rt->now_us();
              }
              rec->hist.record(std::move(op));
              next();
            });
            break;
          }
          case OpType::kGet: {
            auto hit = cache->find(wop.key);
            if (sc.bug == BugKind::kStaleReadCache && hit != cache->end() &&
                bug_rng->next_bool(sc.bug_rate)) {
              // Injected bug: answer from the local cache without asking the
              // cluster. Stale the moment anyone else overwrote the key.
              op.value = hit->second;
              op.res = op.inv + 1;
              rec->hist.record(std::move(op));
              next();
              break;
            }
            kv->get(wop.key, [=](Result<std::string> r) mutable {
              op.res = rt->now_us();
              if (r.ok()) {
                op.value = r.value();
                (*cache)[wop.key] = r.value();
              } else if (r.status().code() == Code::kNotFound) {
                op.found = false;
              } else {
                op.outcome = Outcome::kFailed;
              }
              rec->hist.record(std::move(op));
              next();
            });
            break;
          }
          case OpType::kScan: {
            op.scan_start = wop.key;
            op.scan_end = wop.scan_end;
            op.scan_limit = wop.scan_limit;
            op.key.clear();
            kv->scan(wop.key, wop.scan_end, wop.scan_limit,
                     [=](Result<std::vector<KV>> r) mutable {
                       op.res = rt->now_us();
                       if (r.ok()) {
                         op.scan_kvs = r.value();
                       } else {
                         op.outcome = Outcome::kFailed;
                       }
                       rec->hist.record(std::move(op));
                       next();
                     });
            break;
          }
        }
      };
      (*step)();
    });
  });
}

uint64_t fault_window_end(const FaultPlan& p) {
  uint64_t end = 0;
  for (const auto& l : p.links) end = std::max(end, l.until_us);
  for (const auto& n : p.nodes) {
    end = std::max(end, n.restart_at_us != 0 ? n.restart_at_us : n.crash_at_us);
  }
  for (const auto& pf : p.partitions) {
    end = std::max(end, pf.until_us != 0 ? pf.until_us : pf.after_us);
  }
  // crash_all entries should already be materialized into `nodes` by the
  // time this runs; this bound covers an unexpanded plan conservatively.
  for (const auto& c : p.crash_all) {
    end = std::max(end, c.at_us + 16 * c.stagger_us + c.restart_after_us);
  }
  return end;
}

// Could this pattern set reach a cluster-side node? Verification clients live
// under "verify/"; everything the Cluster spawns is under "bkv/".
bool side_touches_cluster(const std::vector<std::string>& patterns) {
  for (const auto& p : patterns) {
    if (p == "*" || p.rfind("bkv/", 0) == 0) return true;
  }
  return false;
}

// True when some partition can sever cluster-internal links (as opposed to a
// client island, which only isolates verification clients). A cluster cut
// legitimately stalls propagation and reshuffles roles, so convergence and
// session checks only apply when the cluster interior stayed connected.
bool cuts_cluster(const FaultPlan& p) {
  for (const auto& pf : p.partitions) {
    if (side_touches_cluster(pf.a) && side_touches_cluster(pf.b)) return true;
  }
  return false;
}

}  // namespace

RunResult run_scenario(const Scenario& sc) {
  RunResult out;
  out.scenario = sc;

  // Negative-test hook: run the whole scenario with lease/epoch fencing off
  // so the checker can demonstrate the violation the fences prevent.
  std::optional<ScopedFencingDisable> unfenced;
  if (sc.disable_fencing) unfenced.emplace();

  SimFabricOpts fopts;
  fopts.seed = sc.seed;
  SimFabric sim(fopts);

  ClusterOptions copts;
  copts.topology = sc.topology;
  copts.consistency = sc.consistency;
  copts.num_shards = sc.shards;
  copts.num_replicas = sc.replicas;
  copts.datalet_kind = sc.datalet_kind;
  copts.partitioner = sc.partitioner;
  copts.range_splits = sc.range_splits;
  // Crash scenarios need a promotable spare, and failover detection fast
  // enough that client retries ride it out. A migration into a brand-new
  // shard additionally needs a full replica set of registered standbys.
  bool migrates_to_new_shard = false;
  for (const auto& m : sc.migrations) migrates_to_new_shard |= m.dest < 0;
  copts.num_standby = std::max(sc.faults.nodes.empty() ? 0 : 1,
                               migrates_to_new_shard ? sc.replicas : 0);
  copts.sim_node.cores = sc.cores;
  copts.coordinator.hb_period_us = 100'000;
  copts.controlet.hb_period_us = 50'000;
  // Migration scenarios: give the coordinator a durable meta Env (so a
  // crashed coordinator resumes the migration from its persisted record
  // instead of stranding the dual-write window), and slow the copier down so
  // the window is wide enough for the fault plan to land inside it.
  std::shared_ptr<storage::MemEnv> coord_env;
  if (!sc.migrations.empty()) {
    coord_env = std::make_shared<storage::MemEnv>();
    copts.coordinator.meta_env = coord_env.get();
    copts.coordinator.migration_timeout_us = 30'000'000;
    copts.controlet.migrate_copy_period_us = 25'000;
    copts.controlet.migrate_batch = 2;
  }
  // Durable scenarios: one shared power-loss Env plays every node's disk
  // (Cluster gives each replica its own subtree). crash_restart() on a node
  // fault then recovers from checkpoint + WAL instead of keeping state.
  if (sc.durability.enabled) {
    copts.datalet_cfg.env = std::make_shared<storage::MemEnv>();
    copts.datalet_cfg.durable_dir = "/wal";
    copts.datalet_cfg.fsync = sc.durability.fsync;
    copts.datalet_cfg.wal_disable = sc.durability.wal_disable;
    copts.datalet_cfg.torn_writes = sc.durability.torn_writes;
    copts.datalet_cfg.checkpoint_bytes = sc.durability.checkpoint_bytes;
    copts.datalet_cfg.crash_seed = sc.seed;
  }
  Cluster cluster(sim, copts);
  cluster.start();
  sim.run_for(200'000);

  // Whole-cluster power loss: materialize crash_all patterns against the
  // data-plane controlet addresses (the coordinator/DLM/shared-log rack is a
  // separate failure domain) into ordinary NodeFault entries.
  FaultPlan plan = sc.faults;
  if (!plan.crash_all.empty()) {
    std::vector<std::string> data_nodes;
    for (int s = 0; s < sc.shards; ++s) {
      for (int r = 0; r < sc.replicas; ++r) {
        data_nodes.push_back(cluster.controlet_addr(s, r));
      }
    }
    for (const auto& c : plan.crash_all) {
      for (const auto& nf : c.materialized(data_nodes)) plan.nodes.push_back(nf);
    }
    plan.crash_all.clear();
  }

  sim.set_fault_injector(std::make_shared<FaultInjector>(plan));
  Runtime* admin = cluster.admin();
  admin->post([admin, &sim, plan] { schedule_node_faults(*admin, sim, plan); });

  auto rec = std::make_shared<Recorder>();
  for (int i = 0; i < sc.clients; ++i) {
    spawn_client(sim, sc, cluster.coordinator_addr(), uint32_t(i), rec);
  }

  // Drive loop: advance virtual time until every client drained and every
  // scheduled transition and migration completed. Both start from *outside*
  // the event loop, exactly like an operator would issue them.
  const uint64_t start_us = sim.now_us();
  const uint64_t deadline = start_us + 120'000'000;
  size_t ti = 0;
  bool in_transition = false;
  std::shared_ptr<Status> tr_status;
  size_t mi = 0;
  bool in_migration = false;
  std::shared_ptr<Status> mig_status;
  while (true) {
    if (!in_transition && ti < sc.transitions.size() &&
        sim.now_us() - start_us >= sc.transitions[ti].at_us) {
      auto st = std::make_shared<Status>(Status::Internal("pending"));
      cluster.start_transition(sc.transitions[ti].to_t, sc.transitions[ti].to_c,
                               [st](Status s) { *st = s; });
      tr_status = st;
      in_transition = true;
    }
    if (in_transition && tr_status->code() != Code::kInternal) {
      if (!tr_status->ok()) {
        out.error = "transition rejected: " + tr_status->to_string();
        return out;
      }
      // The coordinator arms transition_ *before* replying kOk, so once the
      // accept callback has fired, inactive means complete.
      if (!cluster.coordinator_service()->transition_active()) {
        out.transition_done_us = sim.now_us();
        in_transition = false;
        ++ti;
      }
    }
    if (!in_migration && mi < sc.migrations.size() &&
        sim.now_us() - start_us >= sc.migrations[mi].at_us) {
      auto st = std::make_shared<Status>(Status::Internal("pending"));
      const MigrationStep& m = sc.migrations[mi];
      cluster.start_migration(m.from, m.split_at, m.dest,
                              [st](Status s) { *st = s; });
      mig_status = st;
      in_migration = true;
    }
    if (in_migration && mig_status->code() != Code::kInternal) {
      if (!mig_status->ok()) {
        out.error = "migration rejected: " + mig_status->to_string();
        return out;
      }
      // Inactive after accept means the migration finished — or was aborted,
      // which is a legal chaos outcome (the map is untouched pre-cutover, so
      // an abort is invisible to the consistency contract the checkers hold).
      if (!cluster.coordinator_service()->migration_active()) {
        in_migration = false;
        ++mi;
      }
    }
    if (rec->outstanding == 0 && !in_transition &&
        ti >= sc.transitions.size() && !in_migration &&
        mi >= sc.migrations.size()) {
      break;
    }
    if (sim.now_us() > deadline) {
      out.error = in_transition   ? "transition did not finish"
                  : in_migration ? "migration did not finish"
                                 : "clients did not drain";
      break;
    }
    // Fine-grained slices while a transition is draining keep the completion
    // stamp tight; the split op count below depends on it.
    sim.run_for(in_transition || in_migration ? 2'000 : 10'000);
  }

  // Quiesce: past the last fault window, plus the scenario's settle slack,
  // so convergence checks see a stable cluster.
  const uint64_t settle_until =
      std::max(sim.now_us(), start_us + fault_window_end(plan)) + sc.settle_us;
  while (sim.now_us() < settle_until) sim.run_for(50'000);

  for (int s = 0; s < sc.shards; ++s) {
    for (int r = 0; r < sc.replicas; ++r) {
      ReplicaState rs;
      rs.node = cluster.controlet_addr(s, r);
      auto d = cluster.datalet(s, r);
      if (d == nullptr) continue;
      d->for_each([&rs](std::string_view key, const Entry& e) {
        rs.kv[std::string(key)] = {e.value, e.seq};
      });
      out.replicas.push_back(std::move(rs));
    }
  }

  out.history = rec->hist;
  if (!out.error.empty()) return out;
  if (!sc.transitions.empty() && out.transition_done_us == 0) {
    out.error = "transition never completed; cannot pick check mode";
    return out;
  }

  const Consistency fin = sc.final_consistency();
  CheckOptions cko;
  cko.linearizability = fin == Consistency::kStrong;
  cko.linearizable_after_us =
      (!sc.transitions.empty() && fin == Consistency::kStrong)
          ? out.transition_done_us
          : 0;
  // A transition legitimately reshuffles each session's replica pin, and so
  // does a failover forced by a cluster-interior partition — monotonic
  // sessions are only a promise for untransitioned, unpartitioned EC runs.
  // (Client islands are fine: the pinned replica never changes.)
  // A whole-cluster power loss also reshuffles pins (sessions reconnect while
  // replicas are still catching up), so crash_all runs skip the session check.
  // A migration moves keys to a different replica set mid-run, re-pinning
  // every session that touches the moved range — same exemption.
  cko.monotonic_sessions = fin == Consistency::kEventual &&
                           sc.transitions.empty() && !cuts_cluster(sc.faults) &&
                           sc.faults.crash_all.empty() && sc.migrations.empty();
  out.report = check_history(out.history, cko);

  // Convergence: meaningful once writes stopped and propagation drained.
  // Crash scenarios skip it — a restarted replica resyncs lazily and the
  // linearizability/session checks already cover what clients observed.
  // Likewise for cluster-cutting partitions (deposed replicas rejoin empty).
  if (out.report.ok() && fin == Consistency::kEventual &&
      sc.faults.nodes.empty() && !cuts_cluster(sc.faults)) {
    for (int s = 0; s < sc.shards && out.report.ok(); ++s) {
      std::vector<ReplicaState> shard;
      for (const auto& rs : out.replicas) {
        const std::string tag = "s" + std::to_string(s) + "r";
        if (rs.node.find(tag) != std::string::npos) shard.push_back(rs);
      }
      CheckReport r = check_convergence(shard, out.history);
      if (!r.ok()) out.report = r;
    }
  }
  out.completed = true;
  return out;
}

}  // namespace bespokv::verify
