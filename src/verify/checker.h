// Scalable consistency checkers over recorded histories (DESIGN.md §10).
//
// Linearizability: per-key partitioning (P-compositionality — sound AND
// complete here, since linearizability is compositional over objects and
// every key is an independent read/write register) feeding an iterative
// Wing & Gong / WGL search with memoization on (linearized-set, last-write).
// Branching only happens inside real-time concurrency windows, so
// mostly-sequential histories check in near-linear time and histories with
// hundreds of ops per key stay tractable. kMaybe writes are *optional*
// operations: they may be linearized anywhere after their invocation, or
// never.
//
// Eventual consistency: convergence (all replicas agree on a value that some
// recorded write actually produced) plus session monotonic-reads (a sticky
// client never observes a value older than one it already observed).
//
// Scan sessions: per client, a key observed by successive scans must never
// travel backward in datalet version order ("prefix-consistent per key").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/verify/history.h"

namespace bespokv::verify {

enum class Verdict : uint8_t { kOk = 0, kViolation, kUnknown };

struct CheckReport {
  Verdict verdict = Verdict::kOk;
  // Which property failed: "linearizability", "monotonic-reads",
  // "convergence", "scan-regression", or "" when ok.
  std::string violation;
  std::string key;                // offending key, if per-key
  std::string detail;             // human-readable explanation
  std::vector<uint64_t> op_ids;   // offending ops (history op ids)
  uint64_t states_explored = 0;   // WGL search effort, summed over keys
  size_t keys_checked = 0;
  size_t max_key_ops = 0;         // largest per-key subhistory seen

  bool ok() const { return verdict == Verdict::kOk; }
  std::string to_string() const;
};

struct CheckOptions {
  bool linearizability = true;
  bool monotonic_sessions = false;  // EC configs (sticky-read clients)
  bool scan_sessions = true;
  // Ops invoked before this instant are excluded from the linearizability
  // check; their writes instead become initial-value candidates per key.
  // Used for histories spanning an EC -> SC live transition: linearizable
  // *after* the switch point, convergent before it.
  uint64_t linearizable_after_us = 0;
  // Search budget per key; exceeding it yields Verdict::kUnknown rather than
  // a false verdict.
  uint64_t max_states_per_key = 4'000'000;
};

// One key's register subhistory against a set of admissible initial states.
// `initial_candidates` lists (found, value) pairs the register may start
// from; the empty list means "starts absent".
struct InitialState {
  bool found = false;
  std::string value;
};
CheckReport check_key_linearizable(
    const std::string& key, const std::vector<KeyEvent>& events,
    const std::vector<InitialState>& initial_candidates,
    uint64_t max_states = 4'000'000);

// Full-history check: partitions by key and runs every enabled property.
// Reports the first violation found (keys in lexicographic order).
CheckReport check_history(const History& h, const CheckOptions& opts = {});

// Convergence check against end-of-run replica dumps (runner-collected):
// every live replica must hold the same value per key, and each value must
// be one some acked-or-maybe write actually produced.
struct ReplicaState {
  std::string node;                                     // for reporting
  std::map<std::string, std::pair<std::string, uint64_t>> kv;  // key -> (value, seq)
};
CheckReport check_convergence(const std::vector<ReplicaState>& replicas,
                              const History& h);

}  // namespace bespokv::verify
