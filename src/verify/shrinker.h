// Failing-seed shrinker (DESIGN.md §10): given a scenario whose run produced
// a violation, greedily minimize it while the violation still reproduces —
// fewer clients, fewer ops per client, a smaller keyspace, fewer fault-plan
// entries, no transitions — so the artifact a human debugs is the smallest
// deterministic witness, not the whole nightly run.
//
// Every probe is a full deterministic re-run (runner.h), so the minimized
// scenario is reproducible by construction: re-running its dumped JSON
// yields the same violation.
#pragma once

#include <functional>

#include "src/verify/runner.h"

namespace bespokv::verify {

struct ShrinkOptions {
  // Upper bound on scenario re-runs; greedy passes stop when it is spent.
  int max_runs = 200;
  // Override the run predicate (tests use this to shrink against synthetic
  // reproducers without spinning up a simulator). Defaults to run_scenario.
  std::function<RunResult(const Scenario&)> run;
};

struct ShrinkResult {
  Scenario minimal;
  RunResult final_run;   // the run of `minimal` (still a violation)
  int runs = 0;          // probes spent, including failed candidates
  size_t original_ops = 0;  // clients * ops_per_client before/after
  size_t minimal_ops = 0;
};

// `failing` must reproduce a violation when run; shrink() re-verifies this
// first and returns it unchanged (runs = 1) if it does not.
ShrinkResult shrink(const Scenario& failing, const ShrinkOptions& opts = {});

}  // namespace bespokv::verify
