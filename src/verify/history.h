// History model for the deterministic verification harness (DESIGN.md §10).
//
// A History is the client-side record of a scenario run: one entry per
// invocation a verification client made, with virtual-time invocation and
// response timestamps and the observed outcome. Writes whose retries
// exhausted on a timeout are recorded as Outcome::kMaybe ("possibly
// applied") — the checker treats them as optional operations that may be
// linearized anywhere after their invocation, or never.
//
// Linearizability is compositional over objects (Herlihy & Wing), and for a
// KV store every key is an independent register — so the checker never looks
// at a whole history at once. partition_by_key() projects the history onto
// per-key subhistories (P-compositionality, Horn & Kroening), including a
// per-key read projection of every SCAN that observed the key.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/proto/message.h"

namespace bespokv::verify {

enum class OpKind : uint8_t { kPut = 0, kGet, kDel, kScan };

// Did the operation conclusively happen?
//  kOk     — acked (writes: applied; reads: the value was really observed).
//  kFailed — definite error: a write that was not applied or a read that
//            returned nothing. Carries no information; excluded from checks.
//  kMaybe  — write retries exhausted on a timeout (Status::kMaybeApplied):
//            the write may or may not have taken effect.
enum class Outcome : uint8_t { kOk = 0, kFailed, kMaybe };

constexpr uint64_t kNoResponse = UINT64_MAX;

struct Op {
  uint64_t id = 0;        // unique per history, assigned by record()
  uint32_t client = 0;    // issuing session
  OpKind kind = OpKind::kGet;
  std::string key;        // empty for scans
  std::string value;      // written value (put) / observed value (get)
  bool found = true;      // get: false = observed NOT_FOUND
  Outcome outcome = Outcome::kOk;
  uint64_t inv = 0;                 // invocation (virtual us)
  uint64_t res = kNoResponse;       // response (virtual us)
  // Scan-only fields.
  std::string scan_start, scan_end;
  uint32_t scan_limit = 0;          // requested bound (0 = unlimited)
  std::vector<KV> scan_kvs;         // observed (key, value, datalet seq)

  bool is_write() const { return kind == OpKind::kPut || kind == OpKind::kDel; }
};

// One key's subhistory event, normalized to register semantics: a write
// installs (found, value); a read observes (found, value). DELs are writes
// of "absent"; scans project to one read per observed key.
struct KeyEvent {
  bool is_write = false;
  bool maybe = false;     // optional write (Outcome::kMaybe)
  bool found = true;      // written/observed presence
  std::string value;
  uint64_t inv = 0;
  uint64_t res = kNoResponse;
  uint64_t op_id = 0;     // back-reference into History::ops()
  uint32_t client = 0;
};

class History {
 public:
  // Assigns op.id and appends. Ops may be recorded in any order; checkers
  // sort by invocation time themselves.
  void record(Op op);

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  const Op* find(uint64_t op_id) const;

  // P-compositional projection: per-key register subhistories. Failed ops
  // and reads that never responded are dropped (they carry no information).
  // When `project_scans` is set, a scan contributes one read per key it
  // observed, spanning the whole scan's [inv, res] window — a sound
  // projection, since each per-key lookup happened inside that window.
  std::map<std::string, std::vector<KeyEvent>> partition_by_key(
      bool project_scans = true) const;

  // JSON round-trip (failure artifacts; replayed by `verify_driver`).
  Json to_json() const;
  static Result<History> from_json(const Json& j);

  // Human-readable trace for failure dumps, sorted by invocation time.
  std::string dump() const;

 private:
  std::vector<Op> ops_;
  uint64_t next_id_ = 1;
};

}  // namespace bespokv::verify
