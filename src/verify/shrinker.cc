#include "src/verify/shrinker.h"

#include <algorithm>
#include <utility>

namespace bespokv::verify {

namespace {

// One greedy dimension: repeatedly apply `step` to produce a smaller
// candidate and keep it whenever the violation survives. `step` returns
// false when it cannot shrink the scenario any further.
template <typename Step>
bool shrink_dimension(Scenario& best, RunResult& best_run, int& budget,
                      const std::function<RunResult(const Scenario&)>& run,
                      int& runs, Step step) {
  bool improved = false;
  while (budget > 0) {
    Scenario cand = best;
    if (!step(cand)) break;
    --budget;
    ++runs;
    RunResult r = run(cand);
    if (!r.violation()) break;  // greedy: first miss ends this dimension
    best = std::move(cand);
    best_run = std::move(r);
    improved = true;
  }
  return improved;
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const ShrinkOptions& opts) {
  ShrinkResult out;
  const auto run = opts.run ? opts.run : [](const Scenario& s) {
    return run_scenario(s);
  };
  out.original_ops = size_t(failing.clients) * size_t(failing.ops_per_client);

  out.minimal = failing;
  out.runs = 1;
  out.final_run = run(failing);
  if (!out.final_run.violation()) {
    out.minimal_ops = out.original_ops;
    return out;  // nothing to shrink: the input does not reproduce
  }
  int budget = opts.max_runs - 1;

  bool any = true;
  while (any && budget > 0) {
    any = false;
    // Halve clients, then peel one at a time.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.clients <= 1) return false;
                              s.clients = std::max(1, s.clients / 2);
                              return true;
                            });
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.clients <= 1) return false;
                              --s.clients;
                              return true;
                            });
    // Same for ops per client.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.ops_per_client <= 1) return false;
                              s.ops_per_client =
                                  std::max(1, s.ops_per_client / 2);
                              return true;
                            });
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.ops_per_client <= 1) return false;
                              --s.ops_per_client;
                              return true;
                            });
    // A smaller keyspace concentrates contention and shortens traces.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.workload.num_keys <= 1) return false;
                              s.workload.num_keys =
                                  std::max<uint64_t>(1, s.workload.num_keys / 2);
                              return true;
                            });
    // A deterministic bug beats a probabilistic one: pushing the injected
    // bug rate to certainty makes the violating op appear as early as
    // possible, which unlocks much deeper ops/client shrinks on the next
    // pass of the outer loop.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.bug == BugKind::kNone || s.bug_rate >= 1.0)
                                return false;
                              s.bug_rate = 1.0;
                              return true;
                            });
    // Fault plan: drop node faults first (they dominate run length), then
    // peel link rules from the back, then the front.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.faults.nodes.empty()) return false;
                              s.faults.nodes.pop_back();
                              return true;
                            });
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.faults.links.empty()) return false;
                              s.faults.links.pop_back();
                              return true;
                            });
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.faults.links.empty()) return false;
                              s.faults.links.erase(s.faults.links.begin());
                              return true;
                            });
    // Partitions: a split-brain witness that survives without a partition
    // entry points at a plain failover bug instead — worth knowing.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.faults.partitions.empty()) return false;
                              s.faults.partitions.pop_back();
                              return true;
                            });
    // Transitions: a violation that reproduces without the transition is a
    // simpler witness.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.transitions.empty()) return false;
                              s.transitions.pop_back();
                              return true;
                            });
    // Fewer shards = shorter trace, same semantics.
    any |= shrink_dimension(out.minimal, out.final_run, budget, run, out.runs,
                            [](Scenario& s) {
                              if (s.shards <= 1) return false;
                              --s.shards;
                              return true;
                            });
  }
  out.minimal_ops =
      size_t(out.minimal.clients) * size_t(out.minimal.ops_per_client);
  return out;
}

}  // namespace bespokv::verify
