// A Scenario is the single reproducible unit of the verification harness
// (DESIGN.md §10): one seed, one cluster shape, one workload, one fault
// plan, and an optional schedule of live transitions — everything needed to
// re-run a simulated execution bit-for-bit. Scenarios round-trip through
// JSON so a nightly failure can be shrunk, dumped as an artifact, and
// replayed later with `verify_driver --scenario=FILE`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/coordinator/cluster_meta.h"
#include "src/net/fault.h"
#include "src/workload/workload.h"

namespace bespokv::verify {

// Deliberately injected client-side bugs, used to prove the checker catches
// real violations (and to give the shrinker something to minimize).
//  kStaleReadCache — the client sometimes serves a GET from a local cache of
//  previously *observed* values instead of issuing the RPC: a textbook stale
//  read once any other client has overwritten the key.
enum class BugKind : uint8_t { kNone = 0, kStaleReadCache };

const char* bug_name(BugKind b);
Result<BugKind> parse_bug(const std::string& s);

// A live transition launched mid-run (§V), once virtual time passes `at_us`
// (measured from the instant the verification clients start).
struct TransitionStep {
  uint64_t at_us = 0;
  Topology to_t = Topology::kMasterSlave;
  Consistency to_c = Consistency::kStrong;
};

// A live range migration launched mid-run: once virtual time passes `at_us`
// the driver asks the coordinator to move the tail [split_at, upper) of
// shard `from` into `dest` — the right-adjacent shard — or, with dest < 0,
// into a brand-new shard staffed from standbys (the runner provisions
// `replicas` standby pairs when any step asks for one). Requires the range
// partitioner. The step fires while the workload is running, so the
// dual-write window and the cutover race real client traffic and whatever
// the fault plan throws at them.
struct MigrationStep {
  uint64_t at_us = 0;
  uint32_t from = 0;
  std::string split_at;
  int64_t dest = -1;
};

// Storage durability knobs for a scenario. When enabled, the runner gives
// every replica's engine a per-node directory in one shared in-memory
// power-loss Env (storage::MemEnv): WAL + checkpoints/SSTables, with
// crash_restart() modeling the power cut (torn tail writes included). The
// negative control (wal_disable) keeps the directories but drops the WAL —
// a full-cluster crash then provably loses acked writes.
struct DurabilitySpec {
  bool enabled = false;
  std::string fsync = "always";  // always | groupcommit | os
  bool wal_disable = false;
  bool torn_writes = true;
  uint64_t checkpoint_bytes = 16'384;  // small: exercise checkpoint+WAL mix
};

struct Scenario {
  uint64_t seed = 1;
  Topology topology = Topology::kMasterSlave;
  Consistency consistency = Consistency::kStrong;
  int shards = 2;
  int replicas = 3;
  // tMT by default: the verification workload issues SCANs, which need an
  // ordered engine (tHT has no range support).
  std::string datalet_kind = "tMT";
  // "hash" | "range"; migrations require "range" plus shards-1 split points.
  std::string partitioner = "hash";
  std::vector<std::string> range_splits;

  // Per-node service cores for the sim's multi-server queueing model
  // (SimNodeOpts::cores). Affects timing only — never drawn by random(), so
  // pinned regression seeds keep their exact RNG streams; sweeps set it
  // explicitly (verify_driver --cores) to check invariants hold under the
  // per-core service model.
  int cores = 1;

  int clients = 4;
  int ops_per_client = 25;
  WorkloadSpec workload;
  uint64_t gap_us = 1'000;       // virtual-time spacing between a client's ops

  FaultPlan faults;
  std::vector<TransitionStep> transitions;
  std::vector<MigrationStep> migrations;
  DurabilitySpec durability;

  BugKind bug = BugKind::kNone;
  double bug_rate = 0.0;

  // Test hook (ISSUE 5 acceptance): run with every lease/epoch fence forced
  // off, to prove the checker sees the split-brain bug the fences prevent.
  // Never set outside negative tests.
  bool disable_fencing = false;

  // Quiescence before replica dumps / convergence checks, appended after the
  // last fault window closes.
  uint64_t settle_us = 1'500'000;

  // The consistency mode the *end* of the run operates under (transitions
  // applied in order).
  Consistency final_consistency() const {
    return transitions.empty() ? consistency : transitions.back().to_c;
  }

  Json to_json() const;
  std::string encode() const;  // pretty JSON, for artifacts
  static Result<Scenario> from_json(const Json& j);
  static Result<Scenario> decode(std::string_view text);

  // Derives a full random scenario from a seed for the given starting config:
  // seeded workload mix over a small hot keyspace, a random fault plan, and
  // (sometimes) a live transition. EC configs draw only delay/duplicate/
  // reorder faults — MS+EC propagation legitimately gives up after bounded
  // retries under sustained drops, and crash-induced failover legitimately
  // reshuffles sticky sessions; neither is a consistency bug. SC configs
  // additionally draw drops and a master crash+restart (the envelope the
  // chaos suite proves survivable).
  //
  // `partitions` additionally draws one windowed network partition (the
  // nightly sweep's partition-enabled configs): SC picks from a menu of
  // master⟂coordinator (symmetric or one-way), chain split (master cut from
  // its shard peers) and a minority client island; EC draws client islands
  // only — a cluster-side partition under EC legitimately loses unflushed
  // acks, which no EC checker calls a bug.
  static Scenario random(uint64_t seed, Topology t, Consistency c,
                         bool partitions = false);

  // The scripted ISSUE 5 acceptance scenario: MS+SC, one shard, and an
  // asymmetric partition that cuts the master off from the coordinator while
  // clients and chain peers still reach it. With fencing on this must show
  // zero violations; with disable_fencing it must produce a linearizability
  // violation (acked-write loss via the deposed master's stale-epoch chain
  // writes shadowing the promoted head's) — proving the oracle sees the bug.
  static Scenario split_brain(uint64_t seed);

  // The ISSUE 7 acceptance scenario: durable engines, a clean network, and a
  // whole-cluster power loss mid-workload (every data-plane node crashes
  // within a few ms, restarts 250ms later — inside the eviction deadline, so
  // the membership survives and recovery is pure local replay + peer
  // suffix catch-up). With the WAL on, no acked write may be lost; with
  // wal_enabled=false the same run must LOSE acked writes — proving the
  // checker sees what the WAL prevents.
  static Scenario crash_all(uint64_t seed, Topology t, Consistency c,
                            bool wal_enabled);

  // The ISSUE 10 acceptance scenario family: a range-partitioned cluster
  // splits a shard live, mid-workload, under a seeded chaos draw — clean
  // split into a brand-new shard, coordinator crash+restart mid-migration
  // (the durable record must resume it), a one-way coordinator→master cut
  // during the dual-write window (the close call must time out at the
  // self-fence deadline), or the old owner crashing near the cutover
  // (copy-phase death must abort cleanly; cutover-phase death must compose
  // with failover). Zero acked-write loss and zero linearizability
  // violations are required on every draw.
  static Scenario migration(uint64_t seed, Topology t, Consistency c);

  // The paired negative control (MS+SC, fencing forced off): the same
  // one-way coordinator→master cut across a live migration must LOSE acked
  // writes — the deposed owner never learns the cutover map, keeps acking
  // writes for the moved range, and its dual-written values carry the old
  // epoch, so the new owner's native writes shadow them. If this passes,
  // the checker cannot see what epoch fencing prevents.
  static Scenario migration_no_fencing(uint64_t seed);
};

}  // namespace bespokv::verify
