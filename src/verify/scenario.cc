#include "src/verify/scenario.h"

#include <algorithm>

#include "src/common/rng.h"

namespace bespokv::verify {

const char* bug_name(BugKind b) {
  switch (b) {
    case BugKind::kNone:
      return "none";
    case BugKind::kStaleReadCache:
      return "stale-read-cache";
  }
  return "none";
}

Result<BugKind> parse_bug(const std::string& s) {
  if (s == "none" || s.empty()) return BugKind::kNone;
  if (s == "stale-read-cache") return BugKind::kStaleReadCache;
  return Status::Invalid("unknown bug kind: " + s);
}

Json Scenario::to_json() const {
  Json j = Json::object();
  j.set("seed", Json::number(double(seed)));
  j.set("topology", Json::string(topology_name(topology)));
  j.set("consistency", Json::string(consistency_name(consistency)));
  j.set("shards", Json::number(shards));
  j.set("replicas", Json::number(replicas));
  j.set("datalet_kind", Json::string(datalet_kind));
  j.set("clients", Json::number(clients));
  j.set("ops_per_client", Json::number(ops_per_client));
  j.set("workload", workload.to_json());
  j.set("gap_us", Json::number(double(gap_us)));
  j.set("faults", faults.to_json());
  Json tarr = Json::array();
  for (const TransitionStep& t : transitions) {
    Json tj = Json::object();
    tj.set("at_us", Json::number(double(t.at_us)));
    tj.set("to_topology", Json::string(topology_name(t.to_t)));
    tj.set("to_consistency", Json::string(consistency_name(t.to_c)));
    tarr.push(std::move(tj));
  }
  j.set("transitions", std::move(tarr));
  j.set("bug", Json::string(bug_name(bug)));
  if (bug_rate > 0) j.set("bug_rate", Json::number(bug_rate));
  j.set("settle_us", Json::number(double(settle_us)));
  return j;
}

std::string Scenario::encode() const { return to_json().dump(2); }

Result<Scenario> Scenario::from_json(const Json& j) {
  Scenario s;
  s.seed = uint64_t(j.get("seed").as_number(1));
  auto topo = parse_topology(j.get("topology").as_string("ms"));
  if (!topo.ok()) return topo.status();
  s.topology = topo.value();
  auto cons = parse_consistency(j.get("consistency").as_string("strong"));
  if (!cons.ok()) return cons.status();
  s.consistency = cons.value();
  s.shards = int(j.get("shards").as_number(s.shards));
  s.replicas = int(j.get("replicas").as_number(s.replicas));
  s.datalet_kind = j.get("datalet_kind").as_string(s.datalet_kind);
  s.clients = int(j.get("clients").as_number(s.clients));
  s.ops_per_client = int(j.get("ops_per_client").as_number(s.ops_per_client));
  if (s.shards < 1 || s.replicas < 1 || s.clients < 1 || s.ops_per_client < 0) {
    return Status::Invalid("scenario: shape fields must be positive");
  }
  if (j.get("workload").is_object()) {
    auto w = WorkloadSpec::from_json(j.get("workload"));
    if (!w.ok()) return w.status();
    s.workload = w.value();
  }
  s.gap_us = uint64_t(j.get("gap_us").as_number(double(s.gap_us)));
  if (j.get("faults").is_object()) {
    auto f = FaultPlan::from_json(j.get("faults"));
    if (!f.ok()) return f.status();
    s.faults = f.value();
  }
  for (const Json& tj : j.get("transitions").elements()) {
    TransitionStep t;
    t.at_us = uint64_t(tj.get("at_us").as_number(0));
    auto tt = parse_topology(tj.get("to_topology").as_string("ms"));
    if (!tt.ok()) return tt.status();
    t.to_t = tt.value();
    auto tc = parse_consistency(tj.get("to_consistency").as_string("strong"));
    if (!tc.ok()) return tc.status();
    t.to_c = tc.value();
    s.transitions.push_back(t);
  }
  auto b = parse_bug(j.get("bug").as_string("none"));
  if (!b.ok()) return b.status();
  s.bug = b.value();
  s.bug_rate = j.get("bug_rate").as_number(0);
  if (s.bug_rate < 0 || s.bug_rate > 1) {
    return Status::Invalid("scenario: bug_rate out of [0,1]");
  }
  s.settle_us = uint64_t(j.get("settle_us").as_number(double(s.settle_us)));
  return s;
}

Result<Scenario> Scenario::decode(std::string_view text) {
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  return from_json(j.value());
}

Scenario Scenario::random(uint64_t seed, Topology t, Consistency c) {
  // Decorrelated from both the fabric RNG (seeded with `seed` itself) and
  // FaultPlan::random's internal stream.
  Rng rng(seed * 0xd1342543de82ef95ULL + 0x9e3779b9ULL);
  Scenario s;
  s.seed = seed;
  s.topology = t;
  s.consistency = c;
  s.shards = 1 + int(rng.next_u64(2));   // 1..2
  s.replicas = 3;
  s.clients = 3 + int(rng.next_u64(3));  // 3..5
  s.ops_per_client = 16 + int(rng.next_u64(17));  // 16..32

  // Small hot keyspace so keys are genuinely contended: contention is where
  // consistency bugs live.
  s.workload.num_keys = 8 + rng.next_u64(25);  // 8..32
  s.workload.key_size = 8;
  s.workload.value_size = 16;
  s.workload.get_ratio = 0.35 + 0.25 * rng.next_double();
  s.workload.scan_ratio = rng.next_bool(0.5) ? 0.10 : 0.0;
  s.workload.del_ratio = rng.next_bool(0.3) ? 0.05 : 0.0;
  s.workload.scan_span = 8;
  s.workload.zipfian = rng.next_bool(0.5);
  s.workload.seed = seed;
  s.gap_us = 500 + rng.next_u64(2'000);

  RandomFaultOpts fopts;
  if (c == Consistency::kEventual) {
    // See the header: EC draws only benign network noise.
    fopts.drops = false;
    fopts.duplicates = true;
    fopts.delays = true;
    fopts.reorders = true;
  } else {
    fopts.drops = true;
    if (t == Topology::kMasterSlave && rng.next_bool(0.35)) {
      // Crash shard 0's first replica (the MS master; an AA active) early
      // enough to land mid-workload. The runner provisions a standby so
      // failover can promote a replacement.
      fopts.crash_node = "bkv/s0r0";
      fopts.crash_after_us = 30'000;
      fopts.crash_spread_us = 150'000;
      fopts.restart_delay_us = 1'500'000;
    }
  }
  // Faults stop well before the drive loop's settle phase.
  fopts.window_us = 1'200'000;
  s.faults = FaultPlan::random(seed, fopts);

  // Sometimes harden the config mid-run (§V): MS+EC -> MS+SC, AA+EC -> MS+EC.
  // The checker then demands linearizability (or EC sessions) only *after*
  // the switch completes, and convergence for the prefix.
  if (c == Consistency::kEventual && rng.next_bool(0.33)) {
    TransitionStep step;
    // Relative to client start; early enough that ops still flow after the
    // switch completes.
    step.at_us = 20'000 + rng.next_u64(60'000);
    if (t == Topology::kMasterSlave) {
      step.to_t = Topology::kMasterSlave;
      step.to_c = Consistency::kStrong;
    } else {
      step.to_t = Topology::kMasterSlave;
      step.to_c = Consistency::kEventual;
    }
    s.transitions.push_back(step);
  }
  return s;
}

}  // namespace bespokv::verify
