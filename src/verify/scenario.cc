#include "src/verify/scenario.h"

#include <algorithm>

#include "src/common/rng.h"

namespace bespokv::verify {

const char* bug_name(BugKind b) {
  switch (b) {
    case BugKind::kNone:
      return "none";
    case BugKind::kStaleReadCache:
      return "stale-read-cache";
  }
  return "none";
}

Result<BugKind> parse_bug(const std::string& s) {
  if (s == "none" || s.empty()) return BugKind::kNone;
  if (s == "stale-read-cache") return BugKind::kStaleReadCache;
  return Status::Invalid("unknown bug kind: " + s);
}

Json Scenario::to_json() const {
  Json j = Json::object();
  j.set("seed", Json::number(double(seed)));
  j.set("topology", Json::string(topology_name(topology)));
  j.set("consistency", Json::string(consistency_name(consistency)));
  j.set("shards", Json::number(shards));
  j.set("replicas", Json::number(replicas));
  j.set("datalet_kind", Json::string(datalet_kind));
  if (partitioner != "hash") {
    j.set("partitioner", Json::string(partitioner));
    Json sp = Json::array();
    for (const std::string& s : range_splits) sp.push(Json::string(s));
    j.set("range_splits", std::move(sp));
  }
  if (cores != 1) j.set("cores", Json::number(cores));
  j.set("clients", Json::number(clients));
  j.set("ops_per_client", Json::number(ops_per_client));
  j.set("workload", workload.to_json());
  j.set("gap_us", Json::number(double(gap_us)));
  j.set("faults", faults.to_json());
  Json tarr = Json::array();
  for (const TransitionStep& t : transitions) {
    Json tj = Json::object();
    tj.set("at_us", Json::number(double(t.at_us)));
    tj.set("to_topology", Json::string(topology_name(t.to_t)));
    tj.set("to_consistency", Json::string(consistency_name(t.to_c)));
    tarr.push(std::move(tj));
  }
  j.set("transitions", std::move(tarr));
  if (!migrations.empty()) {
    Json marr = Json::array();
    for (const MigrationStep& m : migrations) {
      Json mj = Json::object();
      mj.set("at_us", Json::number(double(m.at_us)));
      mj.set("from", Json::number(double(m.from)));
      mj.set("split_at", Json::string(m.split_at));
      mj.set("dest", Json::number(double(m.dest)));
      marr.push(std::move(mj));
    }
    j.set("migrations", std::move(marr));
  }
  if (durability.enabled) {
    Json d = Json::object();
    d.set("enabled", Json::boolean(true));
    d.set("fsync", Json::string(durability.fsync));
    if (durability.wal_disable) d.set("wal_disable", Json::boolean(true));
    d.set("torn_writes", Json::boolean(durability.torn_writes));
    d.set("checkpoint_bytes", Json::number(double(durability.checkpoint_bytes)));
    j.set("durability", std::move(d));
  }
  j.set("bug", Json::string(bug_name(bug)));
  if (bug_rate > 0) j.set("bug_rate", Json::number(bug_rate));
  if (disable_fencing) j.set("disable_fencing", Json::boolean(true));
  j.set("settle_us", Json::number(double(settle_us)));
  return j;
}

std::string Scenario::encode() const { return to_json().dump(2); }

Result<Scenario> Scenario::from_json(const Json& j) {
  Scenario s;
  s.seed = uint64_t(j.get("seed").as_number(1));
  auto topo = parse_topology(j.get("topology").as_string("ms"));
  if (!topo.ok()) return topo.status();
  s.topology = topo.value();
  auto cons = parse_consistency(j.get("consistency").as_string("strong"));
  if (!cons.ok()) return cons.status();
  s.consistency = cons.value();
  s.shards = int(j.get("shards").as_number(s.shards));
  s.replicas = int(j.get("replicas").as_number(s.replicas));
  s.datalet_kind = j.get("datalet_kind").as_string(s.datalet_kind);
  s.partitioner = j.get("partitioner").as_string(s.partitioner);
  if (s.partitioner != "hash" && s.partitioner != "range") {
    return Status::Invalid("scenario: unknown partitioner " + s.partitioner);
  }
  for (const Json& sp : j.get("range_splits").elements()) {
    s.range_splits.push_back(sp.as_string(""));
  }
  s.cores = int(j.get("cores").as_number(s.cores));
  s.clients = int(j.get("clients").as_number(s.clients));
  s.ops_per_client = int(j.get("ops_per_client").as_number(s.ops_per_client));
  if (s.shards < 1 || s.replicas < 1 || s.clients < 1 || s.ops_per_client < 0 ||
      s.cores < 1) {
    return Status::Invalid("scenario: shape fields must be positive");
  }
  if (j.get("workload").is_object()) {
    auto w = WorkloadSpec::from_json(j.get("workload"));
    if (!w.ok()) return w.status();
    s.workload = w.value();
  }
  s.gap_us = uint64_t(j.get("gap_us").as_number(double(s.gap_us)));
  if (j.get("faults").is_object()) {
    auto f = FaultPlan::from_json(j.get("faults"));
    if (!f.ok()) return f.status();
    s.faults = f.value();
  }
  for (const Json& tj : j.get("transitions").elements()) {
    TransitionStep t;
    t.at_us = uint64_t(tj.get("at_us").as_number(0));
    auto tt = parse_topology(tj.get("to_topology").as_string("ms"));
    if (!tt.ok()) return tt.status();
    t.to_t = tt.value();
    auto tc = parse_consistency(tj.get("to_consistency").as_string("strong"));
    if (!tc.ok()) return tc.status();
    t.to_c = tc.value();
    s.transitions.push_back(t);
  }
  for (const Json& mj : j.get("migrations").elements()) {
    MigrationStep m;
    m.at_us = uint64_t(mj.get("at_us").as_number(0));
    m.from = uint32_t(mj.get("from").as_number(0));
    m.split_at = mj.get("split_at").as_string("");
    m.dest = int64_t(mj.get("dest").as_number(-1));
    if (m.split_at.empty()) {
      return Status::Invalid("scenario: migration step needs split_at");
    }
    s.migrations.push_back(std::move(m));
  }
  if (!s.migrations.empty() && s.partitioner != "range") {
    return Status::Invalid("scenario: migrations require the range partitioner");
  }
  if (j.get("durability").is_object()) {
    const Json& d = j.get("durability");
    s.durability.enabled = d.get("enabled").as_bool(false);
    s.durability.fsync = d.get("fsync").as_string("always");
    s.durability.wal_disable = d.get("wal_disable").as_bool(false);
    s.durability.torn_writes = d.get("torn_writes").as_bool(true);
    s.durability.checkpoint_bytes = uint64_t(
        d.get("checkpoint_bytes").as_number(double(s.durability.checkpoint_bytes)));
  }
  auto b = parse_bug(j.get("bug").as_string("none"));
  if (!b.ok()) return b.status();
  s.bug = b.value();
  s.bug_rate = j.get("bug_rate").as_number(0);
  if (s.bug_rate < 0 || s.bug_rate > 1) {
    return Status::Invalid("scenario: bug_rate out of [0,1]");
  }
  s.disable_fencing = j.get("disable_fencing").as_bool(false);
  s.settle_us = uint64_t(j.get("settle_us").as_number(double(s.settle_us)));
  return s;
}

Result<Scenario> Scenario::decode(std::string_view text) {
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  return from_json(j.value());
}

Scenario Scenario::random(uint64_t seed, Topology t, Consistency c,
                          bool partitions) {
  // Decorrelated from both the fabric RNG (seeded with `seed` itself) and
  // FaultPlan::random's internal stream.
  Rng rng(seed * 0xd1342543de82ef95ULL + 0x9e3779b9ULL);
  Scenario s;
  s.seed = seed;
  s.topology = t;
  s.consistency = c;
  s.shards = 1 + int(rng.next_u64(2));   // 1..2
  s.replicas = 3;
  s.clients = 3 + int(rng.next_u64(3));  // 3..5
  s.ops_per_client = 16 + int(rng.next_u64(17));  // 16..32

  // Small hot keyspace so keys are genuinely contended: contention is where
  // consistency bugs live.
  s.workload.num_keys = 8 + rng.next_u64(25);  // 8..32
  s.workload.key_size = 8;
  s.workload.value_size = 16;
  s.workload.get_ratio = 0.35 + 0.25 * rng.next_double();
  s.workload.scan_ratio = rng.next_bool(0.5) ? 0.10 : 0.0;
  s.workload.del_ratio = rng.next_bool(0.3) ? 0.05 : 0.0;
  s.workload.scan_span = 8;
  s.workload.zipfian = rng.next_bool(0.5);
  s.workload.seed = seed;
  s.gap_us = 500 + rng.next_u64(2'000);

  RandomFaultOpts fopts;
  if (c == Consistency::kEventual) {
    // See the header: EC draws only benign network noise.
    fopts.drops = false;
    fopts.duplicates = true;
    fopts.delays = true;
    fopts.reorders = true;
  } else {
    fopts.drops = true;
    if (t == Topology::kMasterSlave && rng.next_bool(0.35)) {
      // Crash shard 0's first replica (the MS master; an AA active) early
      // enough to land mid-workload. The runner provisions a standby so
      // failover can promote a replacement.
      fopts.crash_node = "bkv/s0r0";
      fopts.crash_after_us = 30'000;
      fopts.crash_spread_us = 150'000;
      fopts.restart_delay_us = 1'500'000;
    }
  }
  // Faults stop well before the drive loop's settle phase.
  fopts.window_us = 1'200'000;
  s.faults = FaultPlan::random(seed, fopts);

  if (partitions) {
    // One windowed partition per scenario, healing inside the fault window so
    // the settle phase always runs on a connected cluster.
    PartitionFault p;
    p.after_us = 100'000 + rng.next_u64(150'001);             // 100..250ms
    p.until_us = p.after_us + 400'000 + rng.next_u64(500'001);  // +400..900ms
    if (c == Consistency::kEventual) {
      // Minority client island: one verification client loses the whole
      // cluster and must back off (never hot-spin) until the heal.
      p.a = {"verify/c0"};
      p.b = {"bkv/*"};
      p.symmetric = true;
    } else {
      switch (rng.next_u64(4)) {
        case 0:
          // master ⟂ coordinator, one-way: heartbeats are lost but the
          // coordinator's (never-sent) pushes would still get through. The
          // master must self-fence on lease expiry before promotion.
          p.a = {"bkv/s0r0"};
          p.b = {"bkv/coord"};
          p.symmetric = false;
          break;
        case 1:
          // master ⟂ coordinator, symmetric.
          p.a = {"bkv/s0r0"};
          p.b = {"bkv/coord"};
          p.symmetric = true;
          break;
        case 2:
          // Chain split: the master keeps its coordinator link (so its lease
          // stays valid and its failure reports are false suspicions) but
          // cannot reach its shard peers; shard 0 writes stall, nobody is
          // wrongly evicted.
          p.a = {"bkv/s0r0"};
          p.b = {"bkv/s0r*"};
          p.symmetric = true;
          break;
        default:
          // Minority client island under SC.
          p.a = {"verify/c0"};
          p.b = {"bkv/*"};
          p.symmetric = true;
          break;
      }
    }
    s.faults.partitions.push_back(p);
  }

  // Sometimes harden the config mid-run (§V): MS+EC -> MS+SC, AA+EC -> MS+EC.
  // The checker then demands linearizability (or EC sessions) only *after*
  // the switch completes, and convergence for the prefix.
  if (c == Consistency::kEventual && rng.next_bool(0.33)) {
    TransitionStep step;
    // Relative to client start; early enough that ops still flow after the
    // switch completes.
    step.at_us = 20'000 + rng.next_u64(60'000);
    if (t == Topology::kMasterSlave) {
      step.to_t = Topology::kMasterSlave;
      step.to_c = Consistency::kStrong;
    } else {
      step.to_t = Topology::kMasterSlave;
      step.to_c = Consistency::kEventual;
    }
    s.transitions.push_back(step);
  }
  return s;
}

Scenario Scenario::split_brain(uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.topology = Topology::kMasterSlave;
  s.consistency = Consistency::kStrong;
  s.shards = 1;
  s.replicas = 3;
  s.clients = 4;
  // Long enough that ops are still flowing well past lease expiry (~250ms
  // after the cut), the depose (~350ms) and the standby's promotion — the
  // window where an unfenced deposed master still acks chain writes.
  s.ops_per_client = 400;
  s.gap_us = 2'000;
  s.workload.num_keys = 8;  // hot keys: stale-epoch writes collide quickly
  s.workload.key_size = 8;
  s.workload.value_size = 16;
  s.workload.get_ratio = 0.45;
  s.workload.scan_ratio = 0.0;
  s.workload.del_ratio = 0.0;
  s.workload.zipfian = true;
  s.workload.seed = seed;

  // The asymmetric cut: the master's heartbeats (and failure reports) to the
  // coordinator are lost, but every other link — clients→master, the chain,
  // coordinator→peers — stays up. Left open to the end of the run; the
  // deposed node re-registers after promotion regardless, since only the
  // master→coordinator direction is cut.
  PartitionFault p;
  p.a = {"bkv/s0r0"};
  p.b = {"bkv/coord"};
  p.symmetric = false;
  p.after_us = 150'000;
  p.until_us = 1'400'000;
  s.faults.partitions.push_back(p);
  return s;
}

Scenario Scenario::crash_all(uint64_t seed, Topology t, Consistency c,
                             bool wal_enabled) {
  Rng rng(seed * 0xd1342543de82ef95ULL + 0x6b63564bULL);
  Scenario s;
  s.seed = seed;
  s.topology = t;
  s.consistency = c;
  s.shards = 1;
  s.replicas = 3;
  s.clients = 4;
  // Enough ops that plenty are acked before the outage and plenty land after
  // the restart: the workload must outlive crash end (≤450ms) + outage
  // (250ms) + catch-up, or a blind negative control would "pass" simply
  // because nobody read the hole. 300 ops × ≥2.5ms ≥ 750ms guarantees
  // post-recovery reads on every seed.
  s.ops_per_client = 300 + int(rng.next_u64(111));  // 300..410
  s.gap_us = 2'500 + rng.next_u64(1'001);           // 2.5..3.5ms
  s.workload.num_keys = 8;  // hot keys: a lost write is overwritten-or-read fast
  s.workload.key_size = 8;
  s.workload.value_size = 16;
  s.workload.get_ratio = 0.4;
  s.workload.scan_ratio = 0.0;
  s.workload.del_ratio = 0.0;
  s.workload.zipfian = true;
  s.workload.seed = seed;

  s.durability.enabled = true;
  s.durability.fsync = "always";
  s.durability.wal_disable = !wal_enabled;
  s.durability.torn_writes = true;
  s.durability.checkpoint_bytes = 16'384;

  // The power cut: every data-plane node (the runner materializes "*"
  // against the controlet list only — coordinator/DLM/shared-log survive,
  // like a separate management rack) goes down mid-workload within a few ms
  // and comes back 250ms later, inside the ~350ms eviction deadline.
  CrashAllFault cut;
  cut.match = "*";
  cut.at_us = 250'000 + rng.next_u64(200'001);  // 250..450ms
  cut.restart_after_us = 250'000;
  cut.stagger_us = rng.next_u64(5'001);  // 0..5ms between PSUs
  s.faults.crash_all.push_back(cut);
  return s;
}

Scenario Scenario::migration(uint64_t seed, Topology t, Consistency c) {
  Rng rng(seed * 0xd1342543de82ef95ULL + 0x7f4a7c15ULL);
  Scenario s;
  s.seed = seed;
  s.topology = t;
  s.consistency = c;
  s.shards = 2;
  s.replicas = 3;
  s.partitioner = "range";
  // 16 zero-padded workload keys split down the middle: shard 0 owns
  // k0000000..k0000007, shard 1 owns the rest. The migration moves the tail
  // [k0000004, k0000008) of shard 0 — half its keys — while writes flow.
  s.range_splits = {"k0000008"};
  s.clients = 4;
  // The workload must outlive the migration (fires ≤200ms in, completes
  // within ~150ms clean or ~500ms when the close call must age out) so
  // plenty of ops land on both sides of the cutover on every seed.
  s.ops_per_client = 320 + int(rng.next_u64(81));  // 320..400
  s.gap_us = 2'500 + rng.next_u64(1'001);          // 2.5..3.5ms
  s.workload.num_keys = 16;
  s.workload.key_size = 8;
  s.workload.value_size = 16;
  s.workload.get_ratio = 0.4;
  s.workload.scan_ratio = 0.0;
  s.workload.del_ratio = rng.next_bool(0.3) ? 0.05 : 0.0;
  s.workload.zipfian = rng.next_bool(0.5);
  s.workload.seed = seed;

  MigrationStep mig;
  mig.at_us = 120'000 + rng.next_u64(80'001);  // 120..200ms into the run
  mig.from = 0;
  mig.split_at = "k0000004";
  mig.dest = 1;  // boundary move into the right-adjacent shard

  // The chaos draw. Every arm must finish with zero acked-write loss and
  // (under SC) zero linearizability violations.
  switch (rng.next_u64(4)) {
    case 0: {
      // Clean split into a brand-new shard staffed from standbys: exercises
      // the kFlagCopier seeding, the empty-dest chunk stream, and the
      // three-range map layout after cutover.
      mig.dest = -1;
      break;
    }
    case 1: {
      // Coordinator crash mid-migration, restarting well inside the lease
      // deadline so the data plane is not mass-evicted on wake. The durable
      // migration record must resume the copy (or idempotently re-drive the
      // cutover) — without it the old shard strands in its dual-write window.
      NodeFault nf;
      nf.node = "bkv/coord";
      nf.crash_at_us = mig.at_us + 30'000 + rng.next_u64(60'001);
      nf.restart_at_us = nf.crash_at_us + 150'000;
      s.faults.nodes.push_back(nf);
      break;
    }
    case 2: {
      // One-way coordinator→master cut across the dual-write window: the
      // master's heartbeats still arrive (no spurious abort) but grants,
      // the close call, and kMigrateFinish are all lost. The master must
      // self-fence on lease expiry, and the cutover must proceed once the
      // close call ages past the self-fence deadline.
      PartitionFault p;
      p.a = {"bkv/coord"};
      p.b = {"bkv/s0r0"};
      p.symmetric = false;
      p.after_us = mig.at_us + 20'000 + rng.next_u64(40'001);
      p.until_us = p.after_us + 450'000 + rng.next_u64(150'001);
      s.faults.partitions.push_back(p);
      break;
    }
    default: {
      // Old owner (the copier) crashes near the cutover: a copy-phase death
      // must abort the migration cleanly (map untouched, window closed); a
      // cutover-phase death must compose with the shard's failover repair.
      NodeFault nf;
      nf.node = "bkv/s0r0";
      nf.crash_at_us = mig.at_us + 40'000 + rng.next_u64(80'001);
      nf.restart_at_us = nf.crash_at_us + 1'500'000;
      s.faults.nodes.push_back(nf);
      break;
    }
  }
  s.migrations.push_back(std::move(mig));
  return s;
}

Scenario Scenario::migration_no_fencing(uint64_t seed) {
  Rng rng(seed * 0xd1342543de82ef95ULL + 0x2545f491ULL);
  Scenario s;
  s.seed = seed;
  s.topology = Topology::kMasterSlave;
  s.consistency = Consistency::kStrong;
  s.shards = 2;
  s.replicas = 3;
  s.partitioner = "range";
  s.range_splits = {"k0000004"};
  s.clients = 4;
  // Uniform over 8 keys: the moved pair [k0000002, k0000004) carries 25% of
  // the op mass, so the zombie chain and the new owner collide on every
  // seed. Long enough (>= 1.2s of ops) that the staggered client map
  // refreshes split the cohort — some clients writing natively at the new
  // owner while others still read the moved range from the zombie tail.
  s.ops_per_client = 600 + int(rng.next_u64(81));  // 600..680
  s.gap_us = 2'000;
  s.workload.num_keys = 8;
  s.workload.key_size = 8;
  s.workload.value_size = 16;
  s.workload.get_ratio = 0.45;
  s.workload.scan_ratio = 0.0;
  s.workload.del_ratio = 0.0;
  s.workload.zipfian = false;
  s.workload.seed = seed;
  s.disable_fencing = true;

  MigrationStep mig;
  mig.at_us = 130'000 + rng.next_u64(40'001);
  mig.from = 0;
  mig.split_at = "k0000002";
  mig.dest = 1;
  s.migrations.push_back(mig);

  // The cut that fencing would defuse: one-way coordinator -> old shard.
  // Lease renewals, the cutover close call, the E+2 map and kMigrateFinish
  // never reach ANY old replica, while their heartbeats still arrive (no
  // failover) and clients still reach them. Fenced, the replicas self-fence
  // on lease expiry before the close ages out, so the zombie chain goes
  // dark before the new owner serves. Unfenced, the whole old chain keeps
  // serving the moved range on its stale map: clients whose staggered
  // periodic refresh hasn't fired yet read [k0000002, k0000004) from the
  // zombie tail and miss writes acked by the new owner — a stale read the
  // linearizability checker flags on every seed.
  PartitionFault p;
  p.a = {"bkv/coord"};
  p.b = {"bkv/s0r*"};
  p.symmetric = false;
  p.after_us = mig.at_us + 30'000;
  p.until_us = 2'500'000;
  s.faults.partitions.push_back(p);
  return s;
}

}  // namespace bespokv::verify
