#include "src/verify/history.h"

#include <algorithm>
#include <cstdio>

namespace bespokv::verify {

namespace {

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kDel: return "del";
    case OpKind::kScan: return "scan";
  }
  return "?";
}

Result<OpKind> parse_kind(const std::string& s) {
  if (s == "put") return OpKind::kPut;
  if (s == "get") return OpKind::kGet;
  if (s == "del") return OpKind::kDel;
  if (s == "scan") return OpKind::kScan;
  return Status::Invalid("unknown op kind: " + s);
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kFailed: return "failed";
    case Outcome::kMaybe: return "maybe";
  }
  return "?";
}

Result<Outcome> parse_outcome(const std::string& s) {
  if (s == "ok") return Outcome::kOk;
  if (s == "failed") return Outcome::kFailed;
  if (s == "maybe") return Outcome::kMaybe;
  return Status::Invalid("unknown outcome: " + s);
}

}  // namespace

void History::record(Op op) {
  op.id = next_id_++;
  ops_.push_back(std::move(op));
}

const Op* History::find(uint64_t op_id) const {
  for (const Op& op : ops_) {
    if (op.id == op_id) return &op;
  }
  return nullptr;
}

std::map<std::string, std::vector<KeyEvent>> History::partition_by_key(
    bool project_scans) const {
  std::map<std::string, std::vector<KeyEvent>> keys;
  for (const Op& op : ops_) {
    if (op.outcome == Outcome::kFailed) continue;
    switch (op.kind) {
      case OpKind::kPut:
      case OpKind::kDel: {
        KeyEvent ev;
        ev.is_write = true;
        ev.maybe = op.outcome == Outcome::kMaybe;
        ev.found = op.kind == OpKind::kPut;  // del installs "absent"
        ev.value = op.kind == OpKind::kPut ? op.value : "";
        ev.inv = op.inv;
        // A write that never produced a response constrains nothing after it.
        ev.res = ev.maybe ? kNoResponse : op.res;
        ev.op_id = op.id;
        ev.client = op.client;
        keys[op.key].push_back(std::move(ev));
        break;
      }
      case OpKind::kGet: {
        if (op.res == kNoResponse) continue;  // no observation was made
        KeyEvent ev;
        ev.is_write = false;
        ev.found = op.found;
        ev.value = op.found ? op.value : "";
        ev.inv = op.inv;
        ev.res = op.res;
        ev.op_id = op.id;
        ev.client = op.client;
        keys[op.key].push_back(std::move(ev));
        break;
      }
      case OpKind::kScan: {
        if (!project_scans || op.res == kNoResponse) continue;
        for (const KV& kv : op.scan_kvs) {
          KeyEvent ev;
          ev.is_write = false;
          ev.found = true;
          ev.value = kv.value;
          ev.inv = op.inv;
          ev.res = op.res;
          ev.op_id = op.id;
          ev.client = op.client;
          keys[kv.key].push_back(std::move(ev));
        }
        break;
      }
    }
  }
  for (auto& [key, evs] : keys) {
    std::stable_sort(evs.begin(), evs.end(),
                     [](const KeyEvent& a, const KeyEvent& b) {
                       return a.inv < b.inv;
                     });
  }
  return keys;
}

Json History::to_json() const {
  Json arr = Json::array();
  for (const Op& op : ops_) {
    Json o = Json::object();
    o.set("id", Json::number(static_cast<double>(op.id)));
    o.set("client", Json::number(op.client));
    o.set("kind", Json::string(kind_name(op.kind)));
    o.set("outcome", Json::string(outcome_name(op.outcome)));
    o.set("inv", Json::number(static_cast<double>(op.inv)));
    if (op.res != kNoResponse) {
      o.set("res", Json::number(static_cast<double>(op.res)));
    }
    if (op.kind == OpKind::kScan) {
      o.set("start", Json::string(op.scan_start));
      o.set("end", Json::string(op.scan_end));
      o.set("limit", Json::number(op.scan_limit));
      Json kvs = Json::array();
      for (const KV& kv : op.scan_kvs) {
        Json e = Json::object();
        e.set("key", Json::string(kv.key));
        e.set("value", Json::string(kv.value));
        e.set("seq", Json::number(static_cast<double>(kv.seq)));
        kvs.push(std::move(e));
      }
      o.set("kvs", std::move(kvs));
    } else {
      o.set("key", Json::string(op.key));
      o.set("value", Json::string(op.value));
      if (!op.found) o.set("found", Json::boolean(false));
    }
    arr.push(std::move(o));
  }
  Json root = Json::object();
  root.set("ops", std::move(arr));
  return root;
}

Result<History> History::from_json(const Json& j) {
  History h;
  const Json& arr = j.get("ops");
  if (!arr.is_array()) return Status::Invalid("history: missing ops array");
  for (const Json& o : arr.elements()) {
    Op op;
    op.client = static_cast<uint32_t>(o.get("client").as_int());
    auto kind = parse_kind(o.get("kind").as_string(""));
    if (!kind.ok()) return kind.status();
    op.kind = kind.value();
    auto outcome = parse_outcome(o.get("outcome").as_string("ok"));
    if (!outcome.ok()) return outcome.status();
    op.outcome = outcome.value();
    op.inv = static_cast<uint64_t>(o.get("inv").as_number());
    op.res = o.has("res") ? static_cast<uint64_t>(o.get("res").as_number())
                          : kNoResponse;
    if (op.kind == OpKind::kScan) {
      op.scan_start = o.get("start").as_string("");
      op.scan_end = o.get("end").as_string("");
      op.scan_limit = static_cast<uint32_t>(o.get("limit").as_int());
      for (const Json& e : o.get("kvs").elements()) {
        op.scan_kvs.push_back(KV{e.get("key").as_string(""),
                                 e.get("value").as_string(""),
                                 static_cast<uint64_t>(e.get("seq").as_number())});
      }
    } else {
      op.key = o.get("key").as_string("");
      op.value = o.get("value").as_string("");
      op.found = o.get("found").as_bool(true);
    }
    h.record(std::move(op));
  }
  return h;
}

std::string History::dump() const {
  std::vector<const Op*> sorted;
  sorted.reserve(ops_.size());
  for (const Op& op : ops_) sorted.push_back(&op);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Op* a, const Op* b) { return a->inv < b->inv; });
  std::string out;
  char line[256];
  for (const Op* op : sorted) {
    if (op->kind == OpKind::kScan) {
      std::snprintf(line, sizeof(line),
                    "[%10llu,%10llu] c%-2u #%-4llu scan  [%s,%s) -> %zu keys %s\n",
                    static_cast<unsigned long long>(op->inv),
                    static_cast<unsigned long long>(
                        op->res == kNoResponse ? 0 : op->res),
                    op->client, static_cast<unsigned long long>(op->id),
                    op->scan_start.c_str(), op->scan_end.c_str(),
                    op->scan_kvs.size(), outcome_name(op->outcome));
    } else {
      std::snprintf(line, sizeof(line),
                    "[%10llu,%10llu] c%-2u #%-4llu %-4s %s = %s %s\n",
                    static_cast<unsigned long long>(op->inv),
                    static_cast<unsigned long long>(
                        op->res == kNoResponse ? 0 : op->res),
                    op->client, static_cast<unsigned long long>(op->id),
                    kind_name(op->kind), op->key.c_str(),
                    op->kind == OpKind::kGet && !op->found ? "<absent>"
                                                           : op->value.c_str(),
                    outcome_name(op->outcome));
    }
    out += line;
  }
  return out;
}

}  // namespace bespokv::verify
