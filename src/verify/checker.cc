#include "src/verify/checker.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_set>

namespace bespokv::verify {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

// Dynamic bitset over a key's events (histories can exceed 64 ops per key).
struct Bits {
  std::vector<uint64_t> w;
  explicit Bits(size_t n) : w((n + 63) / 64, 0) {}
  bool test(size_t i) const { return (w[i >> 6] >> (i & 63)) & 1; }
  void set(size_t i) { w[i >> 6] |= 1ull << (i & 63); }
};

// Exact memo key: the full bitset plus the last-write index. A hash would be
// cheaper but a collision could silently skip a live branch.
std::string memo_key(const Bits& b, int last_write) {
  std::string k;
  k.reserve(b.w.size() * 8 + 4);
  for (uint64_t word : b.w) k.append(reinterpret_cast<const char*>(&word), 8);
  k.append(reinterpret_cast<const char*>(&last_write), 4);
  return k;
}

struct SearchOutcome {
  bool linearizable = false;
  bool exhausted = false;  // hit the state budget: verdict unknown
  uint64_t states = 0;
};

// Iterative Wing & Gong / WGL search for one register subhistory. A total
// order is sought that respects real-time precedence and register semantics;
// `maybe` writes are optional (they may be linearized after their invocation,
// or never — their effect never constrains other ops' real-time order since
// they carry no response timestamp).
SearchOutcome wgl_search(const std::vector<KeyEvent>& evs,
                         const InitialState& init, uint64_t max_states) {
  const size_t n = evs.size();
  size_t required_total = 0;
  for (const KeyEvent& e : evs) {
    if (!(e.is_write && e.maybe)) ++required_total;
  }

  struct Frame {
    Bits taken;
    int last_write;        // index into evs; -1 = initial state
    size_t cursor = 0;     // next candidate to try at this state
    uint64_t min_res = 0;  // min response over untaken events
    size_t required_taken = 0;
    Frame(size_t n_ops) : taken(n_ops), last_write(-1) {}
  };

  auto min_res_of = [&](const Bits& taken) {
    uint64_t m = kNoResponse;
    for (size_t i = 0; i < n; ++i) {
      if (!taken.test(i)) m = std::min(m, evs[i].res);
    }
    return m;
  };
  auto state_matches = [&](int last_write, const KeyEvent& read) {
    const bool found = last_write < 0 ? init.found : evs[last_write].found;
    const std::string& value =
        last_write < 0 ? init.value : evs[last_write].value;
    return read.found == found && (!read.found || read.value == value);
  };

  SearchOutcome out;
  std::unordered_set<std::string> visited;
  std::vector<Frame> stack;
  Frame root(n);
  root.min_res = min_res_of(root.taken);
  visited.insert(memo_key(root.taken, root.last_write));
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.required_taken == required_total) {
      out.linearizable = true;
      return out;
    }
    // Find the next linearization candidate: untaken, invoked no later than
    // every untaken op's response (real-time order), and legal for the
    // current register state if it is a read.
    size_t pick = n;
    for (size_t i = f.cursor; i < n; ++i) {
      if (f.taken.test(i)) continue;
      if (evs[i].inv > f.min_res) continue;
      if (!evs[i].is_write && !state_matches(f.last_write, evs[i])) continue;
      pick = i;
      break;
    }
    if (pick == n) {
      stack.pop_back();
      continue;
    }
    f.cursor = pick + 1;
    Frame child(n);
    child.taken = f.taken;
    child.taken.set(pick);
    child.last_write = evs[pick].is_write ? static_cast<int>(pick) : f.last_write;
    child.required_taken =
        f.required_taken + (evs[pick].is_write && evs[pick].maybe ? 0 : 1);
    if (!visited.insert(memo_key(child.taken, child.last_write)).second) {
      continue;  // state already explored (and did not lead to success)
    }
    if (++out.states > max_states) {
      out.exhausted = true;
      return out;
    }
    child.min_res = min_res_of(child.taken);
    stack.push_back(std::move(child));
  }
  return out;
}

// Index of acked/maybe PUTs: key -> value -> writes that produced it.
std::map<std::string, std::map<std::string, std::vector<const Op*>>>
write_index(const History& h) {
  std::map<std::string, std::map<std::string, std::vector<const Op*>>> idx;
  for (const Op& op : h.ops()) {
    if (op.kind == OpKind::kPut && op.outcome != Outcome::kFailed) {
      idx[op.key][op.value].push_back(&op);
    }
  }
  return idx;
}

std::map<std::string, bool> keys_with_deletes(const History& h) {
  std::map<std::string, bool> del;
  for (const Op& op : h.ops()) {
    if (op.kind == OpKind::kDel && op.outcome != Outcome::kFailed) {
      del[op.key] = true;
    }
  }
  return del;
}

// A write's effect is only bounded in real time by its response; a kMaybe
// write has no observed response, so it never strictly precedes anything.
uint64_t effective_res(const Op& w) {
  return w.outcome == Outcome::kMaybe ? kNoResponse : w.res;
}

CheckReport check_monotonic_sessions(const History& h) {
  CheckReport r;
  const auto idx = write_index(h);
  const auto dels = keys_with_deletes(h);

  std::vector<const Op*> sorted;
  for (const Op& op : h.ops()) sorted.push_back(&op);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Op* a, const Op* b) { return a->inv < b->inv; });

  // Per client, per key: the newest write this session has observed.
  std::map<uint32_t, std::map<std::string, const Op*>> frontier;

  auto observe = [&](const Op& reader, const std::string& key, bool found,
                     const std::string& value) -> bool {
    const Op** prev_slot = nullptr;
    auto& session = frontier[reader.client];
    auto it = session.find(key);
    if (it != session.end()) prev_slot = &it->second;
    if (!found) {
      // Reading "absent" after this session observed a definite write is a
      // regression — unless a delete could legitimately have removed it.
      if (prev_slot != nullptr && (*prev_slot)->outcome == Outcome::kOk &&
          dels.find(key) == dels.end()) {
        r.verdict = Verdict::kViolation;
        r.violation = "monotonic-reads";
        r.key = key;
        r.op_ids = {(*prev_slot)->id, reader.id};
        r.detail = fmt(
            "client %u observed '%s' = '%s' (op #%llu) but a later read saw "
            "the key absent (op #%llu) with no delete in the history",
            reader.client, key.c_str(), (*prev_slot)->value.c_str(),
            static_cast<unsigned long long>((*prev_slot)->id),
            static_cast<unsigned long long>(reader.id));
        return false;
      }
      return true;
    }
    auto kit = idx.find(key);
    if (kit == idx.end()) return true;
    auto vit = kit->second.find(value);
    if (vit == kit->second.end() || vit->second.size() != 1) {
      return true;  // unattributable or ambiguous value: no conclusion
    }
    const Op* cur = vit->second[0];
    if (prev_slot != nullptr && cur != *prev_slot &&
        effective_res(*cur) < (*prev_slot)->inv) {
      // The newly observed write strictly precedes the session's frontier
      // write in real time: the session traveled backward.
      r.verdict = Verdict::kViolation;
      r.violation = "monotonic-reads";
      r.key = key;
      r.op_ids = {(*prev_slot)->id, cur->id, reader.id};
      r.detail = fmt(
          "client %u read '%s' = '%s' (write #%llu) after having observed "
          "'%s' (write #%llu), but write #%llu completed before write #%llu "
          "began",
          reader.client, key.c_str(), value.c_str(),
          static_cast<unsigned long long>(cur->id),
          (*prev_slot)->value.c_str(),
          static_cast<unsigned long long>((*prev_slot)->id),
          static_cast<unsigned long long>(cur->id),
          static_cast<unsigned long long>((*prev_slot)->id));
      return false;
    }
    if (prev_slot != nullptr) {
      *prev_slot = cur;
    } else {
      session[key] = cur;
    }
    return true;
  };

  for (const Op* op : sorted) {
    if (op->outcome == Outcome::kFailed || op->res == kNoResponse) continue;
    // Only observations advance the frontier: MS+EC does not promise
    // read-your-writes (a session's write lands at the master while its
    // sticky reads may be served by a slave that has not caught up yet).
    if (op->kind == OpKind::kGet) {
      if (!observe(*op, op->key, op->found, op->value)) return r;
    } else if (op->kind == OpKind::kScan) {
      for (const KV& kv : op->scan_kvs) {
        if (!observe(*op, kv.key, true, kv.value)) return r;
      }
    }
  }
  return r;
}

CheckReport check_scan_sessions(const History& h) {
  CheckReport r;
  const auto dels = keys_with_deletes(h);
  // Per client, per key: highest datalet version a scan has shown.
  std::map<uint32_t, std::map<std::string, std::pair<uint64_t, uint64_t>>>
      seen;  // client -> key -> (seq, scan op id)

  std::vector<const Op*> scans;
  for (const Op& op : h.ops()) {
    if (op.kind == OpKind::kScan && op.outcome == Outcome::kOk &&
        op.res != kNoResponse) {
      scans.push_back(&op);
    }
  }
  std::stable_sort(scans.begin(), scans.end(),
                   [](const Op* a, const Op* b) { return a->inv < b->inv; });

  for (const Op* op : scans) {
    auto& session = seen[op->client];
    const bool truncated =
        op->scan_limit != 0 && op->scan_kvs.size() >= op->scan_limit;
    for (const KV& kv : op->scan_kvs) {
      auto it = session.find(kv.key);
      if (it != session.end() && kv.seq < it->second.first) {
        r.verdict = Verdict::kViolation;
        r.violation = "scan-regression";
        r.key = kv.key;
        r.op_ids = {it->second.second, op->id};
        r.detail = fmt(
            "client %u scan #%llu observed '%s' at version %llu, but an "
            "earlier scan #%llu had already shown version %llu",
            op->client, static_cast<unsigned long long>(op->id),
            kv.key.c_str(), static_cast<unsigned long long>(kv.seq),
            static_cast<unsigned long long>(it->second.second),
            static_cast<unsigned long long>(it->second.first));
        return r;
      }
      session[kv.key] = {kv.seq, op->id};
    }
    if (truncated || !dels.empty()) continue;
    // Un-truncated scan over a delete-free history: every previously seen
    // key inside the range must still be present.
    for (const auto& [key, prev] : session) {
      if (key < op->scan_start) continue;
      if (!op->scan_end.empty() && key >= op->scan_end) continue;
      bool present = false;
      for (const KV& kv : op->scan_kvs) {
        if (kv.key == key) {
          present = true;
          break;
        }
      }
      if (!present) {
        r.verdict = Verdict::kViolation;
        r.violation = "scan-regression";
        r.key = key;
        r.op_ids = {prev.second, op->id};
        r.detail = fmt(
            "client %u scan #%llu no longer shows '%s' (seen at version %llu "
            "by scan #%llu) though no delete exists",
            op->client, static_cast<unsigned long long>(op->id), key.c_str(),
            static_cast<unsigned long long>(prev.first),
            static_cast<unsigned long long>(prev.second));
        return r;
      }
    }
  }
  return r;
}

}  // namespace

std::string CheckReport::to_string() const {
  if (ok()) {
    return fmt("ok (%zu keys, max %zu ops/key, %llu states)", keys_checked,
               max_key_ops, static_cast<unsigned long long>(states_explored));
  }
  std::string s = verdict == Verdict::kUnknown ? "UNKNOWN: " : "VIOLATION: ";
  s += violation;
  if (!key.empty()) s += " key='" + key + "'";
  if (!detail.empty()) s += " — " + detail;
  return s;
}

CheckReport check_key_linearizable(
    const std::string& key, const std::vector<KeyEvent>& events,
    const std::vector<InitialState>& initial_candidates, uint64_t max_states) {
  CheckReport r;
  r.keys_checked = 1;
  r.max_key_ops = events.size();
  static const std::vector<InitialState> kAbsent = {InitialState{}};
  const auto& candidates =
      initial_candidates.empty() ? kAbsent : initial_candidates;
  bool any_unknown = false;
  for (const InitialState& init : candidates) {
    SearchOutcome out = wgl_search(events, init, max_states);
    r.states_explored += out.states;
    if (out.linearizable) return r;
    if (out.exhausted) any_unknown = true;
  }
  r.verdict = any_unknown ? Verdict::kUnknown : Verdict::kViolation;
  r.violation = "linearizability";
  r.key = key;
  size_t writes = 0;
  for (const KeyEvent& e : events) writes += e.is_write ? 1 : 0;
  r.detail = any_unknown
                 ? fmt("search budget exhausted after %llu states (%zu ops)",
                       static_cast<unsigned long long>(r.states_explored),
                       events.size())
                 : fmt("no linearization of %zu ops (%zu writes) exists under "
                       "any of %zu admissible initial states",
                       events.size(), writes, candidates.size());
  for (const KeyEvent& e : events) r.op_ids.push_back(e.op_id);
  return r;
}

CheckReport check_history(const History& h, const CheckOptions& opts) {
  CheckReport agg;
  if (opts.scan_sessions) {
    CheckReport r = check_scan_sessions(h);
    if (!r.ok()) return r;
  }
  if (opts.monotonic_sessions) {
    CheckReport r = check_monotonic_sessions(h);
    if (!r.ok()) return r;
  }
  if (!opts.linearizability) return agg;

  const auto parts = h.partition_by_key(/*project_scans=*/true);
  for (const auto& [key, all_events] : parts) {
    std::vector<KeyEvent> events;
    std::vector<InitialState> initials;
    if (opts.linearizable_after_us == 0) {
      events = all_events;
    } else {
      // Split at the transition point: later ops must linearize against an
      // initial state seeded by any pre-switch write (or absence) — the EC
      // prefix does not determine which write "won" before the switch.
      //
      // A write invoked before the switch but still in flight across it can
      // take effect *after* post-switch writes, so it is not a valid
      // "initial state before the window" — the strict window only starts
      // once every straddling write has completed (fixpoint: growing the
      // split can expose new straddlers).
      uint64_t t = opts.linearizable_after_us;
      bool grew = true;
      while (grew) {
        grew = false;
        for (const KeyEvent& e : all_events) {
          if (e.is_write && e.inv < t && e.res != kNoResponse && e.res >= t) {
            t = e.res + 1;
            grew = true;
          }
        }
      }
      initials.push_back(InitialState{});
      for (const KeyEvent& e : all_events) {
        if (e.inv >= t) {
          events.push_back(e);
        } else if (e.is_write && e.maybe) {
          // A maybe-applied pre-switch write has no response bound: it may
          // land anywhere in the window (or never). Check it as a maybe op
          // — linearizing it first is equivalent to an initial state.
          events.push_back(e);
        } else if (e.is_write) {
          initials.push_back(InitialState{e.found, e.value});
        }
      }
    }
    agg.max_key_ops = std::max(agg.max_key_ops, events.size());
    ++agg.keys_checked;
    CheckReport r = check_key_linearizable(key, events, initials,
                                           opts.max_states_per_key);
    agg.states_explored += r.states_explored;
    if (!r.ok()) {
      r.states_explored = agg.states_explored;
      r.keys_checked = agg.keys_checked;
      r.max_key_ops = agg.max_key_ops;
      return r;
    }
  }
  return agg;
}

CheckReport check_convergence(const std::vector<ReplicaState>& replicas,
                              const History& h) {
  CheckReport r;
  if (replicas.empty()) return r;
  const auto idx = write_index(h);
  const ReplicaState& ref = replicas[0];
  for (size_t i = 1; i < replicas.size(); ++i) {
    const ReplicaState& other = replicas[i];
    for (const auto& [key, vs] : ref.kv) {
      auto it = other.kv.find(key);
      if (it == other.kv.end() || it->second.first != vs.first) {
        r.verdict = Verdict::kViolation;
        r.violation = "convergence";
        r.key = key;
        r.detail = fmt(
            "replicas diverge on '%s': %s has '%s' (v%llu), %s has %s",
            key.c_str(), ref.node.c_str(), vs.first.c_str(),
            static_cast<unsigned long long>(vs.second), other.node.c_str(),
            it == other.kv.end()
                ? "<absent>"
                : ("'" + it->second.first + "' (v" +
                   std::to_string(it->second.second) + ")").c_str());
        return r;
      }
    }
    for (const auto& [key, vs] : other.kv) {
      if (ref.kv.find(key) == ref.kv.end()) {
        r.verdict = Verdict::kViolation;
        r.violation = "convergence";
        r.key = key;
        r.detail = fmt("replicas diverge on '%s': %s has '%s', %s lacks it",
                       key.c_str(), other.node.c_str(), vs.first.c_str(),
                       ref.node.c_str());
        return r;
      }
    }
  }
  // No value from nowhere: each converged value must have been written.
  for (const auto& [key, vs] : ref.kv) {
    auto kit = idx.find(key);
    const bool known =
        kit != idx.end() && kit->second.find(vs.first) != kit->second.end();
    if (!known) {
      r.verdict = Verdict::kViolation;
      r.violation = "convergence";
      r.key = key;
      r.detail =
          fmt("converged value '%s' for '%s' matches no recorded write",
              vs.first.c_str(), key.c_str());
      return r;
    }
  }
  return r;
}

}  // namespace bespokv::verify
