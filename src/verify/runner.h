// Executes a Scenario on the deterministic simulator and checks the result
// (DESIGN.md §10). One call = one complete simulated cluster life: build a
// SimFabric seeded with the scenario's seed, start the cluster, install the
// fault plan, run N concurrent recording clients through the real client
// library, drive any scheduled live transitions, settle, dump replica state,
// and run every checker the final configuration warrants:
//
//   final SC  -> per-key linearizability (split at the transition point when
//                the run started in EC), plus scan sessions
//   final EC  -> replica convergence + "no value from nowhere", session
//                monotonic reads (sticky clients, untransitioned runs only —
//                a transition legitimately reshuffles replica pins), plus
//                scan sessions
//
// Determinism: the same Scenario always produces the same History and the
// same verdict — which is what makes shrinking (shrinker.h) possible.
#pragma once

#include <string>

#include "src/verify/checker.h"
#include "src/verify/history.h"
#include "src/verify/scenario.h"

namespace bespokv::verify {

struct RunResult {
  Scenario scenario;
  History history;
  CheckReport report;
  std::vector<ReplicaState> replicas;
  // Virtual instant the last transition completed (0 = none scheduled or
  // none finished). Linearizability of EC->SC runs starts here.
  uint64_t transition_done_us = 0;
  // False when the harness itself failed (clients never drained, transition
  // stuck, ...) — distinct from a consistency violation.
  bool completed = false;
  std::string error;

  bool violation() const { return report.verdict == Verdict::kViolation; }
};

RunResult run_scenario(const Scenario& sc);

}  // namespace bespokv::verify
