#include "src/cluster/cluster.h"

#include "src/common/logging.h"
#include "src/datalet/locked.h"
#include "src/net/tcp_fabric.h"

namespace bespokv {

Result<ClusterOptions> ClusterOptions::from_json(const Json& j) {
  ClusterOptions o;
  auto topo = parse_topology(j.get("topology").as_string("ms"));
  if (!topo.ok()) return topo.status();
  o.topology = topo.value();
  auto cons =
      parse_consistency(j.get("consistency_model").as_string(
          j.get("consistency").as_string("eventual")));
  if (!cons.ok()) return cons.status();
  o.consistency = cons.value();
  o.num_shards = static_cast<int>(j.get("num_shards").as_int(1));
  // Paper configs count replicas *excluding* the master ("num_replicas
  // indicates how many replicas excluding the master replica", §A).
  if (j.has("num_replicas")) {
    o.num_replicas = static_cast<int>(j.get("num_replicas").as_int(2)) + 1;
  }
  o.datalet_kind = j.get("datalet").as_string("tHT");
  o.partitioner = j.get("partitioner").as_string("hash");
  o.num_standby = static_cast<int>(j.get("num_standby").as_int(0));
  for (const auto& e : j.get("replica_datalets").elements()) {
    o.replica_datalet_kinds.push_back(e.as_string());
  }
  for (const auto& e : j.get("range_splits").elements()) {
    o.range_splits.push_back(e.as_string());
  }
  if (o.partitioner == "range") {
    // Reject a misordered/duplicate split list here rather than let it build
    // a map that silently misroutes (shard bounds come straight from it).
    BKV_RETURN_IF_ERROR(validate_range_splits(o.range_splits));
    if (static_cast<int>(o.range_splits.size()) != o.num_shards - 1) {
      return Status::Invalid("range_splits: need num_shards - 1 split points");
    }
  }
  return o;
}

Cluster::Cluster(Fabric& fabric, ClusterOptions opts)
    : fabric_(fabric),
      sim_(dynamic_cast<SimFabric*>(&fabric)),
      opts_(std::move(opts)) {
  tcp_mode_ = dynamic_cast<TcpFabric*>(&fabric) != nullptr;
}

Addr Cluster::make_addr(const std::string& logical) {
  if (!tcp_mode_) return opts_.name + "/" + logical;
  auto it = addr_map_.find(logical);
  if (it != addr_map_.end()) return it->second;
  const Addr a = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  addr_map_[logical] = a;
  return a;
}

std::shared_ptr<Datalet> Cluster::new_datalet(int replica_index,
                                              const std::string& tag) {
  std::string kind = opts_.datalet_kind;
  if (!opts_.replica_datalet_kinds.empty()) {
    kind = opts_.replica_datalet_kinds[static_cast<size_t>(replica_index) %
                                       opts_.replica_datalet_kinds.size()];
  }
  DataletConfig cfg = opts_.datalet_cfg;
  // One directory per replica under the deployment's storage root(s), so
  // engines sharing an Env (the verify harness's MemEnv) never collide.
  if (!cfg.durable_dir.empty()) cfg.durable_dir += "/" + tag;
  if (!cfg.dir.empty()) cfg.dir += "/" + tag;
  auto engine = make_datalet(kind, cfg);
  if (engine == nullptr) {
    LOG_ERROR << "unknown datalet kind " << kind << ", using tHT";
    engine = make_datalet("tHT", cfg);
  }
  if (sim_ == nullptr) {
    // Real-thread fabrics: transitions share engines across node threads.
    return std::make_shared<LockedDatalet>(std::move(engine));
  }
  return std::shared_ptr<Datalet>(std::move(engine));
}

Runtime* Cluster::add_server_node(const Addr& addr,
                                  std::shared_ptr<Service> svc) {
  if (sim_ != nullptr) return sim_->add_node(addr, std::move(svc), opts_.sim_node);
  return fabric_.add_node(addr, std::move(svc));
}

void Cluster::start() {
  if (started_) return;
  started_ = true;

  if (opts_.partitioner == "range") {
    // Programmatic configs bypass from_json's validation; a bad split list
    // here would index out of range or silently misroute, so degrade loudly.
    Status vs = validate_range_splits(opts_.range_splits);
    if (vs.ok() &&
        static_cast<int>(opts_.range_splits.size()) != opts_.num_shards - 1) {
      vs = Status::Invalid("range_splits: need num_shards - 1 split points");
    }
    if (!vs.ok()) {
      LOG_ERROR << "cluster: " << vs.to_string()
                << "; falling back to hash partitioning";
      opts_.partitioner = "hash";
    }
  }

  coord_addr_ = make_addr("coord");
  dlm_addr_ = make_addr("dlm");
  log_addr_ = make_addr("sharedlog");
  admin_addr_ = make_addr("admin");

  // Initial shard map.
  ShardMap map;
  map.epoch = 1;
  map.topology = opts_.topology;
  map.consistency = opts_.consistency;
  map.partitioner = opts_.partitioner;
  pairs_.resize(static_cast<size_t>(opts_.num_shards));
  for (int s = 0; s < opts_.num_shards; ++s) {
    ShardInfo si;
    si.id = static_cast<uint32_t>(s);
    if (opts_.partitioner == "range") {
      si.lower = s == 0 ? "" : opts_.range_splits[static_cast<size_t>(s - 1)];
      si.upper = s == opts_.num_shards - 1
                     ? ""
                     : opts_.range_splits[static_cast<size_t>(s)];
    }
    for (int r = 0; r < opts_.num_replicas; ++r) {
      const Addr a = make_addr("s" + std::to_string(s) + "r" + std::to_string(r));
      si.replicas.push_back(ReplicaInfo{a});
    }
    map.shards.push_back(std::move(si));
  }

  CoordinatorConfig ccfg = opts_.coordinator;
  ccfg.dlm = dlm_addr_;
  ccfg.sharedlog = log_addr_;
  coord_svc_ = std::make_shared<CoordinatorService>(map, ccfg);
  // Control-plane services are unconstrained nodes on the sim fabric.
  if (sim_ != nullptr) {
    SimNodeOpts ctl;
    ctl.is_client = true;  // metadata path is not the measured bottleneck
    sim_->add_node(coord_addr_, coord_svc_, ctl);
    // The DLM is a single Redlock-style server (a real serialization point —
    // the paper's AA+SC plateau comes from exactly this); the shared log
    // models a CORFU-class sequencer+SSD-array, which sustains hundreds of
    // thousands of appends/s ("we need to scale the Shared Log setup as
    // BESPOKV scales", §C.C).
    SimNodeOpts dlm_opts;
    dlm_opts.base_service_us = 12;
    dlm_opts.per_kb_service_us = 0;
    sim_->add_node(dlm_addr_, std::make_shared<DlmService>(), dlm_opts);
    // Modeled as a CORFU-class deployment whose sequencer+flash array scales
    // with the cluster (~600k appends/s in the CORFU paper), i.e. never the
    // measured bottleneck — matching the paper's own assumption. Appends
    // still pay the full round-trip latency.
    SimNodeOpts log_opts;
    log_opts.is_client = true;
    sim_->add_node(log_addr_, std::make_shared<SharedLogService>(), log_opts);
  } else {
    fabric_.add_node(coord_addr_, coord_svc_);
    fabric_.add_node(dlm_addr_, std::make_shared<DlmService>());
    fabric_.add_node(log_addr_, std::make_shared<SharedLogService>());
  }

  for (int s = 0; s < opts_.num_shards; ++s) {
    for (int r = 0; r < opts_.num_replicas; ++r) {
      Pair p;
      p.addr = map.shards[static_cast<size_t>(s)]
                   .replicas[static_cast<size_t>(r)]
                   .controlet;
      p.datalet =
          new_datalet(r, "s" + std::to_string(s) + "r" + std::to_string(r));
      ControletConfig cfg = opts_.controlet;
      cfg.coordinator = coord_addr_;
      cfg.shard = static_cast<uint32_t>(s);
      cfg.datalet = p.datalet;
      p.controlet = make_controlet(opts_.topology, opts_.consistency, cfg);
      add_server_node(p.addr, p.controlet);
      pairs_[static_cast<size_t>(s)].push_back(std::move(p));
    }
  }

  for (int i = 0; i < opts_.num_standby; ++i) {
    Pair p;
    p.addr = make_addr("standby" + std::to_string(i));
    p.datalet = new_datalet(0, "standby" + std::to_string(i));
    ControletConfig cfg = opts_.controlet;
    cfg.coordinator = coord_addr_;
    cfg.datalet = p.datalet;
    // Standbys adopt the failed pair's role at recovery time; the concrete
    // type must match the deployment's topology+consistency.
    p.controlet = make_controlet(opts_.topology, opts_.consistency, cfg);
    add_server_node(p.addr, p.controlet);
    standbys_.push_back(p);
  }

  // Admin/driver node (client capacity on the sim fabric).
  auto admin_svc = std::make_shared<LambdaService>(
      [](Runtime&, const Addr&, Message, Replier reply) {
        reply(Message::reply(Code::kInvalid));
      });
  if (sim_ != nullptr) {
    SimNodeOpts copts;
    copts.is_client = true;
    admin_rt_ = sim_->add_node(admin_addr_, admin_svc, copts);
  } else {
    admin_rt_ = fabric_.add_node(admin_addr_, admin_svc);
  }

  // Register standbys with the coordinator (from the admin node so the
  // registration flows through the fabric like any other message).
  for (const auto& p : standbys_) {
    Message m;
    m.op = Op::kRegisterNode;
    m.key = p.addr;
    admin_rt_->post([this, m]() mutable { admin_rt_->send(coord_addr_, std::move(m)); });
  }
}

Addr Cluster::controlet_addr(int shard, int replica) const {
  return pairs_[static_cast<size_t>(shard)][static_cast<size_t>(replica)].addr;
}

std::shared_ptr<ControletBase> Cluster::controlet(int shard, int replica) {
  return pairs_[static_cast<size_t>(shard)][static_cast<size_t>(replica)].controlet;
}

std::shared_ptr<Datalet> Cluster::datalet(int shard, int replica) {
  return pairs_[static_cast<size_t>(shard)][static_cast<size_t>(replica)].datalet;
}

void Cluster::kill_controlet(int shard, int replica) {
  fabric_.kill(controlet_addr(shard, replica));
}

bool Cluster::restart_controlet(int shard, int replica) {
  return fabric_.restart(controlet_addr(shard, replica));
}

void Cluster::start_transition(Topology topology, Consistency consistency,
                               std::function<void(Status)> done) {
  ++transition_round_;
  const std::string suffix = ".v" + std::to_string(transition_round_ + 1);

  // Spawn successor controlets bound to the existing datalets ("two old and
  // new controlets are mapped to one datalet during the transition", §V).
  std::vector<std::string> mapping;
  std::vector<Pair> generation;
  const ShardMap& live = coord_svc_->shard_map();
  for (const auto& shard : live.shards) {
    for (const auto& rep : shard.replicas) {
      // Locate the live pair owning this controlet address.
      std::shared_ptr<Datalet> engine;
      for (auto& shard_pairs : pairs_) {
        for (auto& p : shard_pairs) {
          if (p.addr == rep.controlet) engine = p.datalet;
        }
      }
      for (auto& gen : generations_) {
        for (auto& p : gen) {
          if (p.addr == rep.controlet) engine = p.datalet;
        }
      }
      for (auto& p : standbys_) {
        if (p.addr == rep.controlet) engine = p.datalet;
      }
      if (engine == nullptr) continue;

      Pair np;
      np.addr = rep.controlet + suffix;
      if (tcp_mode_) np.addr = make_addr("t" + std::to_string(transition_round_) + "-" + rep.controlet);
      np.datalet = engine;
      ControletConfig cfg = opts_.controlet;
      cfg.coordinator = coord_addr_;
      cfg.shard = shard.id;
      cfg.datalet = engine;
      np.controlet = make_controlet(topology, consistency, cfg);
      add_server_node(np.addr, np.controlet);
      mapping.push_back(rep.controlet + "=" + np.addr);
      generation.push_back(np);
    }
  }
  generations_.push_back(std::move(generation));

  Message req;
  req.op = Op::kStartTransition;
  Json j = Json::object();
  j.set("topology", Json::string(topology_name(topology)));
  j.set("consistency", Json::string(consistency_name(consistency)));
  req.value = j.dump();
  req.strs = std::move(mapping);
  admin_rt_->post([this, req = std::move(req), done = std::move(done)]() mutable {
    admin_rt_->call(coord_addr_, std::move(req),
                    [done = std::move(done)](Status s, Message rep) {
                      if (!done) return;
                      if (!s.ok()) {
                        done(s);
                      } else {
                        done(Status(rep.code));
                      }
                    },
                    2'000'000);
  });
}

void Cluster::start_migration(uint32_t from, const std::string& split_at,
                              int64_t dest, std::function<void(Status)> done) {
  Json j = Json::object();
  j.set("from", Json::number(from));
  j.set("split_at", Json::string(split_at));
  if (dest >= 0) {
    j.set("dest", Json::number(static_cast<double>(dest)));
  } else {
    Json reps = Json::array();
    for (const auto& p : standbys_) reps.push(Json::string(p.addr));
    j.set("new_replicas", std::move(reps));
  }
  Message req;
  req.op = Op::kMigrateShard;
  req.value = j.dump();
  admin_rt_->post([this, req = std::move(req),
                   done = std::move(done)]() mutable {
    admin_rt_->call(coord_addr_, std::move(req),
                    [done = std::move(done)](Status s, Message rep) {
                      if (!done) return;
                      if (!s.ok()) {
                        done(s);
                      } else {
                        done(Status(rep.code));
                      }
                    },
                    2'000'000);
  });
}

}  // namespace bespokv
