// ClusterHarness: assembles a complete bespoKV deployment on any fabric —
// coordinator, DLM, shared log, N shards x R controlet+datalet pairs,
// optional standby pairs for failover — and drives live topology/consistency
// transitions (§V) by spawning successor controlets bound to the existing
// datalets and asking the coordinator to orchestrate the switch.
//
// This is the programmatic equivalent of the paper's slap.sh + JSON config
// deployment (§A); ClusterOptions::from_json accepts the same shape of
// configuration file.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/controlet/controlet.h"
#include "src/coordinator/coordinator.h"
#include "src/datalet/datalet.h"
#include "src/net/sim_fabric.h"
#include "src/net/runtime.h"

namespace bespokv {

struct ClusterOptions {
  Topology topology = Topology::kMasterSlave;
  Consistency consistency = Consistency::kEventual;
  int num_shards = 1;
  int num_replicas = 3;           // paper default: 3 (master + 2 slaves)
  std::string datalet_kind = "tHT";
  // Polyglot persistence (§IV-D): per-replica-index engine override, e.g.
  // {"tLSM", "tMT", "tLog"} stores each replica in a different engine.
  std::vector<std::string> replica_datalet_kinds;
  DataletConfig datalet_cfg;
  std::string partitioner = "hash";   // "hash" | "range"
  std::vector<std::string> range_splits;  // shard i covers [splits[i-1], splits[i])
  int num_standby = 0;
  std::string name = "bkv";       // address prefix
  ControletConfig controlet;      // timer/batching knobs (coordinator filled in)
  CoordinatorConfig coordinator;
  // SimFabric only: server node capacity model.
  SimNodeOpts sim_node;

  // Parses the paper-style JSON config ({"topology": "ms", ...}).
  static Result<ClusterOptions> from_json(const Json& j);
};

class Cluster {
 public:
  Cluster(Fabric& fabric, ClusterOptions opts);

  // Builds and starts every node. Idempotent.
  void start();

  const Addr& coordinator_addr() const { return coord_addr_; }
  const Addr& dlm_addr() const { return dlm_addr_; }
  const Addr& sharedlog_addr() const { return log_addr_; }
  Addr controlet_addr(int shard, int replica) const;

  std::shared_ptr<ControletBase> controlet(int shard, int replica);
  std::shared_ptr<Datalet> datalet(int shard, int replica);
  CoordinatorService* coordinator_service() { return coord_svc_.get(); }

  // An extra fabric node whose Runtime the driver may use for admin calls
  // and workload generation. On SimFabric it has client (infinite) capacity.
  Runtime* admin() { return admin_rt_; }
  const Addr& admin_addr() const { return admin_addr_; }

  // Crash-stops a controlet+datalet pair (the coordinator's heartbeat sweep
  // will detect it and run failover).
  void kill_controlet(int shard, int replica);

  // Restarts a previously killed pair on its original address. The controlet
  // re-enters via the catch-up protocol (resync before serving). Returns
  // false if the node is not restartable (still alive, or fabric shut down).
  bool restart_controlet(int shard, int replica);

  // Spawns successor controlets (same datalets, new addresses) implementing
  // `topology`+`consistency` and asks the coordinator to transition. `done`
  // fires when the coordinator *accepts* the request; completion is visible
  // via coordinator_service()->transition_active() turning false.
  void start_transition(Topology topology, Consistency consistency,
                        std::function<void(Status)> done);

  // Asks the coordinator to migrate the tail [split_at, upper) of `from`'s
  // range (requires the range partitioner) into `dest` — the right-adjacent
  // shard — or, with dest < 0, into a brand-new shard staffed from this
  // cluster's registered standbys. `done` fires when the coordinator accepts
  // (or rejects) the request; completion is visible via
  // coordinator_service()->migration_active() turning false.
  void start_migration(uint32_t from, const std::string& split_at,
                       int64_t dest, std::function<void(Status)> done);

  const ClusterOptions& options() const { return opts_; }

 private:
  struct Pair {
    Addr addr;
    std::shared_ptr<ControletBase> controlet;
    std::shared_ptr<Datalet> datalet;
  };

  Addr make_addr(const std::string& logical);
  // `tag` keys the engine's durable directory (when datalet_cfg.durable_dir
  // or dir is set): every replica persists under its own subtree of the
  // shared Env, like a disk per machine.
  std::shared_ptr<Datalet> new_datalet(int replica_index,
                                       const std::string& tag);
  Runtime* add_server_node(const Addr& addr, std::shared_ptr<Service> svc);

  Fabric& fabric_;
  SimFabric* sim_;  // non-null when fabric_ is a SimFabric
  ClusterOptions opts_;
  bool started_ = false;
  int transition_round_ = 0;

  Addr coord_addr_, dlm_addr_, log_addr_, admin_addr_;
  std::shared_ptr<CoordinatorService> coord_svc_;
  Runtime* admin_rt_ = nullptr;
  std::vector<std::vector<Pair>> pairs_;          // [shard][replica]
  std::vector<Pair> standbys_;
  std::vector<std::vector<Pair>> generations_;    // transition successors
  // TCP fabrics need real ports; logical->actual address mapping.
  std::map<std::string, Addr> addr_map_;
  bool tcp_mode_ = false;
};

}  // namespace bespokv
