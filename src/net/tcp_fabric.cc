#include "src/net/tcp_fabric.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <vector>

#include "src/common/byte_buffer.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/net/envelope.h"
#include "src/net/fault.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {

uint64_t real_now_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Parses "host:port"; host must be a dotted quad (loopback in practice).
bool parse_addr(const Addr& addr, sockaddr_in* sa) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = addr.substr(0, colon);
  const int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &sa->sin_addr) == 1;
}

void set_nonblock(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Write-queue chunk sizing: a chunk accepts envelopes until its backing store
// crosses kChunkBytes, then the next envelope starts a fresh chunk (one
// oversized envelope may exceed the cap — it simply owns its chunk). flush()
// gathers up to kMaxIov chunks per writev.
constexpr size_t kChunkBytes = 256 * 1024;
constexpr int kMaxIov = 64;
constexpr size_t kSpareChunks = 8;  // recycled chunk ring per connection

}  // namespace

class TcpFabric::TcpRuntime : public Runtime {
 public:
  TcpRuntime(TcpFabric* fab, Node* node, Addr addr)
      : fab_(fab), node_(node), addr_(std::move(addr)), rng_(fnv1a64(addr_)) {}

  const Addr& self() const override { return addr_; }
  uint64_t now_us() override { return real_now_us(); }
  void post(std::function<void()> fn) override;
  uint64_t set_timer(uint64_t delay_us, std::function<void()> fn) override;
  uint64_t set_periodic(uint64_t period_us, std::function<void()> fn) override;
  void cancel_timer(uint64_t id) override;
  void call(const Addr& dst, Message req, RpcCallback cb, uint64_t timeout_us) override;
  void send(const Addr& dst, Message msg) override;
  Rng& rng() override { return rng_; }

 private:
  friend class TcpFabric;
  TcpFabric* fab_;
  Node* node_;
  Addr addr_;
  Rng rng_;
};

struct TcpFabric::Node {
  TcpFabric* fab = nullptr;
  Addr addr;
  std::shared_ptr<Service> svc;
  std::unique_ptr<TcpRuntime> rt;
  std::thread thread;

  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;
  std::atomic<bool> stopping{false};
  std::atomic<bool> alive{true};

  // External task injection (post from other threads).
  std::mutex task_mu;
  std::deque<std::function<void()>> ext_tasks;

  // Network counters live in the node's metrics registry ("net.*" — see
  // tcp_fabric.h); these cached handles keep the hot path lock-free.
  // Initialized in add_node() before the event loop starts.
  obs::Counter* msgs_sent = nullptr;
  obs::Counter* msgs_dropped = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* flushes = nullptr;

  // Everything below is touched only on the node thread.
  struct Conn {
    int fd = -1;
    ByteBuffer rbuf;
    // Outgoing ring: ship() encodes into the tail chunk, flush() writev()s
    // from the head. Drained chunks recycle through `spare` so steady-state
    // traffic reuses warm allocations instead of growing one giant buffer.
    std::deque<ByteBuffer> wq;
    std::vector<ByteBuffer> spare;
    bool want_write = false;
    bool dirty = false;  // enqueued on dirty_fds for the deferred flush

    size_t pending_bytes() const {
      size_t n = 0;
      for (const auto& b : wq) n += b.size();
      return n;
    }
  };
  std::map<int, Conn> conns;          // fd -> connection
  std::map<Addr, int> out_conns;      // peer listen addr -> fd
  std::vector<int> dirty_fds;         // conns with queued output this wakeup
  struct Timer {
    uint64_t id;
    uint64_t period_us;
    std::function<void()> fn;
  };
  // Deadline-ordered so the next-due timer is begin(); `timers_by_id` makes
  // cancel O(log T). RPC timeouts are set on every call() and cancelled on
  // every response, so both operations must stay cheap — a flat vector scan
  // here goes quadratic under load and stalls the whole event loop.
  std::multimap<uint64_t, Timer> timers;  // at_us -> timer
  std::map<uint64_t, std::multimap<uint64_t, Timer>::iterator> timers_by_id;
  uint64_t next_timer_id = 1;
  struct PendingRpc {
    RpcCallback cb;
    uint64_t timer_id = 0;
  };
  std::map<uint64_t, PendingRpc> pending;

  void wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  bool setup();
  void loop();
  void close_conn(int fd);
  void handle_readable(int fd);
  void flush(int fd);
  void flush_dirty();
  void mark_dirty(int fd, Conn& c);
  ByteBuffer& out_chunk(Conn& c);
  void dispatch(Envelope env);
  int conn_to(const Addr& dst);
  void ship(const Addr& dst, const Envelope& env);
  void ship_now(const Addr& dst, const Envelope& env);
  uint64_t add_timer(uint64_t at_us, uint64_t period_us,
                     std::function<void()> fn);
  void cancel_timer(uint64_t id);
  void run_due_timers();
  int next_timeout_ms() const;
};

bool TcpFabric::Node::setup() {
  sockaddr_in sa;
  if (!parse_addr(addr, &sa)) {
    LOG_ERROR << "TcpFabric: bad address " << addr;
    return false;
  }
  listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) return false;
  int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    LOG_ERROR << "TcpFabric: bind " << addr << " failed: " << std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd, 128) != 0) return false;
  set_nonblock(listen_fd);

  epoll_fd = ::epoll_create1(0);
  wake_fd = ::eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd;
  epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
  ev.data.fd = wake_fd;
  epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);
  return true;
}

uint64_t TcpFabric::Node::add_timer(uint64_t at_us, uint64_t period_us,
                                    std::function<void()> fn) {
  const uint64_t id = next_timer_id++;
  auto it = timers.emplace(at_us, Timer{id, period_us, std::move(fn)});
  timers_by_id[id] = it;
  return id;
}

void TcpFabric::Node::cancel_timer(uint64_t id) {
  auto it = timers_by_id.find(id);
  if (it == timers_by_id.end()) return;
  timers.erase(it->second);
  timers_by_id.erase(it);
}

void TcpFabric::Node::run_due_timers() {
  const uint64_t now = real_now_us();
  // Fire timers one at a time; a fired timer may add or cancel others. Only
  // timers due at entry fire — anything a callback schedules for "now" waits
  // for the next loop iteration (next_timeout_ms returns 0 for it).
  while (!timers.empty() && timers.begin()->first <= now) {
    auto it = timers.begin();
    Timer t = std::move(it->second);
    timers_by_id.erase(t.id);
    timers.erase(it);
    if (t.period_us > 0) {
      auto re = timers.emplace(now + t.period_us,
                               Timer{t.id, t.period_us, t.fn});
      timers_by_id[t.id] = re;
    }
    t.fn();
  }
}

int TcpFabric::Node::next_timeout_ms() const {
  if (timers.empty()) return 100;  // wake periodically regardless
  const uint64_t earliest = timers.begin()->first;
  const uint64_t now = real_now_us();
  if (earliest <= now) return 0;
  return static_cast<int>(std::min<uint64_t>((earliest - now) / 1000 + 1, 100));
}

void TcpFabric::Node::loop() {
  epoll_event events[64];
  while (!stopping.load()) {
    const int n = epoll_wait(epoll_fd, events, 64, next_timeout_ms());
    if (stopping.load()) break;
    run_due_timers();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd) {
        uint64_t buf;
        while (::read(wake_fd, &buf, sizeof(buf)) > 0) {
        }
        std::deque<std::function<void()>> tasks;
        {
          std::lock_guard<std::mutex> g(task_mu);
          tasks.swap(ext_tasks);
        }
        for (auto& t : tasks) t();
      } else if (fd == listen_fd) {
        while (true) {
          int cfd = ::accept(listen_fd, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblock(cfd);
          set_nodelay(cfd);
          conns[cfd].fd = cfd;
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          epoll_ctl(epoll_fd, EPOLL_CTL_ADD, cfd, &ev);
        }
      } else {
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) handle_readable(fd);
        if (conns.count(fd) && (events[i].events & EPOLLOUT)) flush(fd);
      }
    }
    // Deferred flush: everything shipped during this wakeup (timer fires,
    // external posts, request dispatches, replies) drains per-connection in
    // one writev — N envelopes to one peer cost one syscall.
    flush_dirty();
  }
  // Teardown on the node thread.
  for (auto& [fd, c] : conns) ::close(fd);
  conns.clear();
  out_conns.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  if (wake_fd >= 0) ::close(wake_fd);
  if (epoll_fd >= 0) ::close(epoll_fd);
}

void TcpFabric::Node::close_conn(int fd) {
  epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns.erase(fd);
  for (auto it = out_conns.begin(); it != out_conns.end();) {
    if (it->second == fd) {
      it = out_conns.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpFabric::Node::handle_readable(int fd) {
  auto it = conns.find(fd);
  if (it == conns.end()) return;
  Conn& c = it->second;
  constexpr size_t kReadChunk = 64 * 1024;
  while (true) {
    // read(2) straight into the buffer tail — no bounce through a stack
    // buffer and no erase(0, n) memmove afterwards (consume is O(1)).
    char* dst = c.rbuf.prepare(kReadChunk);
    ssize_t n = ::read(fd, dst, kReadChunk);
    if (n > 0) {
      c.rbuf.commit(static_cast<size_t>(n));
      if (static_cast<size_t>(n) < kReadChunk) break;  // drained the socket
    } else {
      c.rbuf.commit(0);
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
        close_conn(fd);
        return;
      }
      break;
    }
  }
  while (true) {
    Envelope env;
    size_t consumed = 0;
    Status s = decode_envelope(c.rbuf.readable(), &env, &consumed);
    if (!s.ok()) {
      LOG_WARN << "TcpFabric " << addr << ": corrupt stream from fd " << fd
               << ": " << s.to_string();
      close_conn(fd);
      return;
    }
    if (consumed == 0) break;
    c.rbuf.consume(consumed);
    dispatch(std::move(env));
    if (conns.count(fd) == 0) return;  // dispatch may have killed the conn
  }
}

void TcpFabric::Node::dispatch(Envelope env) {
  if (env.kind == EnvelopeKind::kResponse) {
    auto it = pending.find(env.rpc_id);
    if (it == pending.end()) return;  // already timed out
    RpcCallback cb = std::move(it->second.cb);
    cancel_timer(it->second.timer_id);
    pending.erase(it);
    cb(Status::Ok(), std::move(env.msg));
    return;
  }
  const Addr from = env.from;
  const uint64_t rpc_id = env.rpc_id;
  Replier reply;
  if (env.kind == EnvelopeKind::kRequest) {
    Node* self = this;
    reply = [self, from, rpc_id](Message resp) {
      if (self->stopping.load()) return;
      Envelope out;
      out.rpc_id = rpc_id;
      out.kind = EnvelopeKind::kResponse;
      out.from = self->addr;
      out.msg = std::move(resp);
      self->ship(from, out);
    };
  } else {
    reply = [](Message) {};
  }
  if (obs::handle_admin(*rt, env.msg, reply)) return;
  obs::DispatchSpan span(*rt, env.msg);
  reply = span.wrap(std::move(reply));
  svc->handle(from, std::move(env.msg), std::move(reply));
}

int TcpFabric::Node::conn_to(const Addr& dst) {
  auto it = out_conns.find(dst);
  if (it != out_conns.end()) return it->second;
  sockaddr_in sa;
  if (!parse_addr(dst, &sa)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  // Loopback connects complete immediately in practice; block briefly here
  // rather than implementing full async connect state tracking.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  set_nonblock(fd);
  set_nodelay(fd);
  conns[fd].fd = fd;
  out_conns[dst] = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
  return fd;
}

// Picks the chunk ship() encodes into: the current tail until it crosses
// kChunkBytes, then a fresh (preferably recycled) chunk.
ByteBuffer& TcpFabric::Node::out_chunk(Conn& c) {
  if (c.wq.empty() || c.wq.back().backing().size() >= kChunkBytes) {
    if (!c.spare.empty()) {
      c.wq.push_back(std::move(c.spare.back()));
      c.spare.pop_back();
    } else {
      c.wq.emplace_back();
    }
  }
  return c.wq.back();
}

void TcpFabric::Node::mark_dirty(int fd, Conn& c) {
  if (c.dirty) return;
  c.dirty = true;
  dirty_fds.push_back(fd);
}

void TcpFabric::Node::flush_dirty() {
  while (!dirty_fds.empty()) {
    std::vector<int> batch;
    batch.swap(dirty_fds);
    for (int fd : batch) {
      if (conns.count(fd)) flush(fd);
    }
  }
}

void TcpFabric::Node::flush(int fd) {
  auto it = conns.find(fd);
  if (it == conns.end()) return;
  Conn& c = it->second;
  c.dirty = false;
  bool wrote = false;
  while (!c.wq.empty() && !c.wq.front().empty()) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    for (const auto& b : c.wq) {
      if (iovcnt == kMaxIov) break;
      std::string_view v = b.readable();
      if (v.empty()) continue;
      iov[iovcnt].iov_base = const_cast<char*>(v.data());
      iov[iovcnt].iov_len = v.size();
      ++iovcnt;
    }
    if (iovcnt == 0) break;
    ssize_t n = ::writev(fd, iov, iovcnt);
    if (n > 0) {
      wrote = true;
      bytes_sent->inc(static_cast<uint64_t>(n));
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        ByteBuffer& head = c.wq.front();
        const size_t take = std::min(left, head.size());
        head.consume(take);
        left -= take;
        if (head.empty() && c.wq.size() > 1) {
          // Fully drained and not the active tail: recycle into the spare
          // ring (bounded) so the next burst reuses its allocation.
          if (c.spare.size() < kSpareChunks) {
            head.clear();
            c.spare.push_back(std::move(head));
          }
          c.wq.pop_front();
        }
      }
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      close_conn(fd);
      return;
    }
  }
  if (wrote) flushes->inc();
  const bool want = !c.wq.empty() && !c.wq.front().empty();
  if (want != c.want_write) {
    c.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  }
}

void TcpFabric::Node::ship(const Addr& dst, const Envelope& env) {
  // Chaos hook: the injector's verdict applies once per send; delayed and
  // duplicated copies go straight to ship_now so they are not re-judged.
  if (auto fi = fab->fault_injector()) {
    const FaultDecision d = fi->on_message(addr, dst, real_now_us());
    if (d.drop) {
      msgs_dropped->inc();
      return;
    }
    if (d.delay_us > 0) {
      // ship() only runs on the node thread, so the timer manipulation and
      // the deferred re-ship both stay on this node's event loop.
      add_timer(real_now_us() + d.delay_us, 0,
                [this, dst, env, dup = d.duplicate] {
                  ship_now(dst, env);
                  if (dup) ship_now(dst, env);
                });
      return;
    }
    if (d.duplicate) ship_now(dst, env);
  }
  ship_now(dst, env);
}

void TcpFabric::Node::ship_now(const Addr& dst, const Envelope& env) {
  if (fab->severed(addr, dst)) {  // partition: drop outgoing traffic
    msgs_dropped->inc();
    LOG_DEBUG << "TcpFabric " << addr << ": dropped envelope to " << dst
              << " (partitioned)";
    return;
  }
  int fd = conn_to(dst);
  if (fd < 0) {  // peer dead: caller's timeout handles it
    msgs_dropped->inc();
    LOG_DEBUG << "TcpFabric " << addr << ": dropped envelope to " << dst
              << " (connect failed)";
    return;
  }
  Conn& c = conns[fd];
  // Zero-copy enqueue: the envelope is serialized directly into the
  // connection's tail chunk; the deferred flush_dirty() pass writes it out
  // together with everything else queued during this event-loop wakeup.
  encode_envelope(env, &out_chunk(c));
  msgs_sent->inc();
  mark_dirty(fd, c);
}

// ----------------------------- TcpRuntime ----------------------------------

void TcpFabric::TcpRuntime::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> g(node_->task_mu);
    node_->ext_tasks.push_back(std::move(fn));
  }
  node_->wake();
}

uint64_t TcpFabric::TcpRuntime::set_timer(uint64_t delay_us, std::function<void()> fn) {
  // Timers are manipulated on the node thread only (services run there);
  // external threads must post() first.
  return node_->add_timer(real_now_us() + delay_us, 0, std::move(fn));
}

uint64_t TcpFabric::TcpRuntime::set_periodic(uint64_t period_us, std::function<void()> fn) {
  return node_->add_timer(real_now_us() + period_us, period_us, std::move(fn));
}

void TcpFabric::TcpRuntime::cancel_timer(uint64_t id) {
  node_->cancel_timer(id);
}

void TcpFabric::TcpRuntime::call(const Addr& dst, Message req, RpcCallback cb,
                                 uint64_t timeout_us) {
  obs::stamp_outgoing(*this, req);
  const uint64_t rpc_id = fab_->next_rpc_id_.fetch_add(1);
  Node* n = node_;
  // The response path cancels this timer; without that, every completed RPC
  // would leave a dead timer behind for timeout_us and a busy client drowns
  // in stale entries.
  const uint64_t timer_id = set_timer(timeout_us, [n, rpc_id] {
    auto it = n->pending.find(rpc_id);
    if (it == n->pending.end()) return;
    RpcCallback cb = std::move(it->second.cb);
    n->pending.erase(it);
    cb(Status::Timeout("rpc timeout"), Message{});
  });
  node_->pending[rpc_id] = Node::PendingRpc{std::move(cb), timer_id};
  Envelope env;
  env.rpc_id = rpc_id;
  env.kind = EnvelopeKind::kRequest;
  env.from = addr_;
  env.msg = std::move(req);
  node_->ship(dst, env);
}

void TcpFabric::TcpRuntime::send(const Addr& dst, Message msg) {
  obs::stamp_outgoing(*this, msg);
  Envelope env;
  env.kind = EnvelopeKind::kOneWay;
  env.from = addr_;
  env.msg = std::move(msg);
  node_->ship(dst, env);
}

// ------------------------------ TcpFabric ----------------------------------

TcpFabric::TcpFabric() {
  const int port = pick_port();
  external_ = add_node("127.0.0.1:" + std::to_string(port),
                       std::make_shared<LambdaService>(
                           [](Runtime&, const Addr&, Message, Replier reply) {
                             reply(Message::reply(Code::kInvalid));
                           }));
}

TcpFabric::~TcpFabric() { shutdown(); }

Runtime* TcpFabric::add_node(const Addr& addr, std::shared_ptr<Service> svc) {
  auto node = std::make_shared<Node>();
  node->fab = this;
  node->addr = addr;
  node->svc = std::move(svc);
  node->rt = std::make_unique<TcpRuntime>(this, node.get(), addr);
  {
    obs::MetricsRegistry& m = node->rt->obs().metrics();
    node->msgs_sent = &m.counter("net.msgs_sent");
    node->msgs_dropped = &m.counter("net.msgs_dropped");
    node->bytes_sent = &m.counter("net.bytes_sent");
    node->flushes = &m.counter("net.flushes");
  }
  if (!node->setup()) {
    LOG_ERROR << "TcpFabric: failed to set up node " << addr;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    nodes_[addr] = node;
  }
  node->svc->start(*node->rt);
  node->thread = std::thread([node] { node->loop(); });
  return node->rt.get();
}

std::shared_ptr<TcpFabric::Node> TcpFabric::find(const Addr& addr) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second;
}

bool TcpFabric::severed(const Addr& a, const Addr& b) const {
  std::lock_guard<std::mutex> g(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return cuts_.count(key) > 0;
}

void TcpFabric::kill(const Addr& addr) {
  auto node = find(addr);
  if (!node) return;
  node->svc->stop();
  node->alive.store(false);
  node->stopping.store(true);
  node->wake();
  if (node->thread.joinable()) node->thread.join();
}

bool TcpFabric::alive(const Addr& addr) const {
  auto node = find(addr);
  return node && node->alive.load();
}

bool TcpFabric::restart(const Addr& addr) {
  auto node = find(addr);
  if (!node || node->alive.load()) return false;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shut_down_) return false;
  }
  if (node->thread.joinable()) node->thread.join();
  // The old loop closed every fd on its way out; start from a clean slate.
  node->timers.clear();
  node->timers_by_id.clear();
  node->pending.clear();
  node->dirty_fds.clear();
  {
    std::lock_guard<std::mutex> g(node->task_mu);
    node->ext_tasks.clear();
  }
  node->stopping.store(false);
  if (!node->setup()) {
    LOG_ERROR << "TcpFabric: restart of " << addr << " failed to re-bind";
    return false;
  }
  node->alive.store(true);
  node->svc->start(*node->rt);
  node->thread = std::thread([node] { node->loop(); });
  return true;
}

void TcpFabric::partition(const Addr& a, const Addr& b, bool cut) {
  std::lock_guard<std::mutex> g(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (cut) {
    cuts_.insert(key);
  } else {
    cuts_.erase(key);
  }
}

void TcpFabric::shutdown() {
  std::vector<std::shared_ptr<Node>> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& [addr, node] : nodes_) all.push_back(node);
  }
  for (auto& node : all) {
    if (node->alive.load()) node->svc->stop();
    node->alive.store(false);
    node->stopping.store(true);
    node->wake();
  }
  for (auto& node : all) {
    if (node->thread.joinable()) node->thread.join();
  }
}

Result<Message> TcpFabric::call_sync(const Addr& dst, Message req,
                                     uint64_t timeout_us) {
  auto prom = std::make_shared<std::promise<Result<Message>>>();
  auto fut = prom->get_future();
  external_->post([this, dst, req = std::move(req), prom, timeout_us]() mutable {
    external_->call(
        dst, std::move(req),
        [prom](Status s, Message m) {
          if (s.ok()) {
            prom->set_value(std::move(m));
          } else {
            prom->set_value(s);
          }
        },
        timeout_us);
  });
  return fut.get();
}

int TcpFabric::pick_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(sa);
  getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  const int port = ntohs(sa.sin_port);
  ::close(fd);
  return port;
}

}  // namespace bespokv
