#include "src/net/tcp_fabric.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/byte_buffer.h"
#include "src/common/hash.h"
#include "src/common/intrusive_list.h"
#include "src/common/logging.h"
#include "src/common/mpsc_queue.h"
#include "src/net/buffer_pool.h"
#include "src/net/envelope.h"
#include "src/net/fault.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {

uint64_t real_now_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Parses "host:port"; host must be a dotted quad (loopback in practice).
bool parse_addr(const Addr& addr, sockaddr_in* sa) {
  auto colon = addr.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = addr.substr(0, colon);
  const int port = std::atoi(addr.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(static_cast<uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &sa->sin_addr) == 1;
}

void set_nonblock(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Write-queue chunk sizing: a chunk accepts envelopes until its backing store
// crosses kChunkBytes, then the next envelope starts a fresh (pooled) chunk —
// one oversized envelope may exceed the cap and simply owns its chunk.
// flush() gathers up to kMaxIov chunks per writev.
constexpr size_t kChunkBytes = 256 * 1024;
constexpr int kMaxIov = 64;

// epoll user-data discriminants. Connection events carry the Conn* itself;
// heap pointers never collide with these small sentinels.
constexpr uint64_t kListenTag = 1;
constexpr uint64_t kWakeTag = 2;

// The low bits of every rpc id name the reactor that issued the call, so a
// response landing on any of the node's sockets can be steered back to the
// pending-map (and timeout timer) that owns it.
constexpr unsigned kRidxBits = 4;
constexpr uint64_t kRidxMask = (1u << kRidxBits) - 1;
constexpr int kMaxReactors = 1 << kRidxBits;

// Timer ids encode their owning reactor in the top byte ((idx+1) << 56), so
// cancel_timer can route to the right reactor from anywhere. Ids are never 0.
constexpr unsigned kTimerRidxShift = 56;

}  // namespace

class TcpFabric::TcpRuntime : public Runtime {
 public:
  TcpRuntime(TcpFabric* fab, Node* node, Addr addr)
      : fab_(fab), node_(node), addr_(std::move(addr)) {}

  const Addr& self() const override { return addr_; }
  uint64_t now_us() override { return real_now_us(); }
  void post(std::function<void()> fn) override;
  uint64_t set_timer(uint64_t delay_us, std::function<void()> fn) override;
  uint64_t set_periodic(uint64_t period_us, std::function<void()> fn) override;
  void cancel_timer(uint64_t id) override;
  void call(const Addr& dst, Message req, RpcCallback cb, uint64_t timeout_us) override;
  void send(const Addr& dst, Message msg) override;
  Rng& rng() override;

 private:
  friend class TcpFabric;
  TcpFabric* fab_;
  Node* node_;
  Addr addr_;
};

struct TcpFabric::Node {
  TcpFabric* fab = nullptr;
  Addr addr;
  std::shared_ptr<Service> svc;
  std::unique_ptr<TcpRuntime> rt;
  std::vector<std::unique_ptr<Reactor>> reactors;
  std::atomic<bool> stopping{false};
  std::atomic<bool> alive{true};

  // Node-wide network counters (relaxed atomics — every reactor bumps them).
  obs::Counter* msgs_sent = nullptr;
  obs::Counter* msgs_dropped = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* flushes = nullptr;

  int n_reactors() const { return static_cast<int>(reactors.size()); }
  Reactor* home() { return reactors[0].get(); }
  // Reactor of the calling thread if it belongs to this node, else home.
  // Anything touching reactor-owned state from a non-reactor thread must run
  // before the loop threads start (Service::start) or after they join.
  Reactor* here();
  void wake_all();

  // Reply path: prefers the request's inbound connection (origin reactor +
  // connection generation id), falling back to dialing `from`'s listen
  // address if that connection is gone.
  void reply_to(const Addr& from, uint64_t rpc_id, Message resp,
                int origin_ridx, uint64_t origin_gen);
  void deliver_reply(Envelope out, const Addr& from, int origin_ridx,
                     uint64_t origin_gen);
};

// One reactor: an epoll loop thread owning a shard of the node's connections.
// Every field below the inbox is touched only by this reactor's loop thread
// (or before it starts / after it joins).
struct TcpFabric::Reactor {
  Node* node = nullptr;
  int idx = 0;

  int epoll_fd = -1;
  int listen_fd = -1;
  // Created once per reactor and kept open across kill/restart: other
  // reactors and external posters write it at any time, and closing it while
  // they might would hand the fd number to an unrelated socket.
  int wake_fd = -1;
  std::thread thread;

  // Cross-reactor / external funnel. Producers push a closure then write the
  // eventfd; the loop drains after every wakeup.
  MpscQueue<std::function<void()>> inbox;

  static thread_local Reactor* current;

  struct Conn {
    int fd = -1;
    uint64_t gen = 0;  // reactor-unique id; Repliers hold (reactor, gen)
    Addr peer;         // nonempty iff this is an outbound connection
    ByteBuffer rbuf;
    // Outgoing ring: append_envelope encodes into the tail chunk, flush()
    // writev()s from the head. Drained chunks recycle through the reactor's
    // BufferPool so steady-state traffic reuses warm slabs.
    std::deque<ByteBuffer> wq;
    size_t pending = 0;  // queued unsent bytes (sum of wq readable sizes)
    bool want_write = false;
    bool corked = false;  // EPOLLIN off: send queue above the hi watermark
    bool dirty = false;   // enqueued on dirty_conns for the deferred flush
    bool closed = false;  // unlinked; lives in the graveyard until batch end
    ListHook<Conn> hook;
  };

  IntrusiveList<Conn, &Conn::hook> conns;
  std::unordered_map<uint64_t, Conn*> conns_by_gen;
  std::unordered_map<Addr, Conn*> out_conns;  // peer listen addr -> conn
  std::vector<Conn*> dirty_conns;
  // Closed connections are deleted only after the current event batch: the
  // epoll_wait result array may still reference them.
  std::vector<Conn*> graveyard;
  uint64_t next_gen = 1;  // monotonic across restarts — stale Replier gens
                          // must never match a revived node's connections

  BufferPool pool;
  Rng rng{1};

  struct Timer {
    uint64_t id;
    uint64_t period_us;
    std::function<void()> fn;
  };
  // Deadline-ordered so the next-due timer is begin(); `timers_by_id` makes
  // cancel O(log T). RPC timeouts are set on every call() and cancelled on
  // every response, so both operations must stay cheap.
  std::multimap<uint64_t, Timer> timers;  // at_us -> timer
  std::map<uint64_t, std::multimap<uint64_t, Timer>::iterator> timers_by_id;
  uint64_t next_timer_seq = 1;

  struct PendingRpc {
    RpcCallback cb;
    uint64_t timer_id = 0;
  };
  std::map<uint64_t, PendingRpc> pending;

  bool accept_paused = false;  // EMFILE backoff in effect

  // Per-reactor metrics (handles resolved before the loop threads start).
  obs::Counter* accepts = nullptr;
  obs::Counter* wakeups = nullptr;
  obs::Counter* stalls = nullptr;
  obs::Gauge* queue_depth = nullptr;

  ~Reactor();

  void wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }
  void post(std::function<void()> fn) {
    inbox.push(std::move(fn));
    wake();
  }

  bool setup();
  void loop();
  void drain_inbox();
  void reap();
  void teardown();
  void accept_ready();
  void pause_accept();
  void resume_accept();
  Conn* register_fd(int fd);
  void close_conn(Conn* c);
  void handle_readable(Conn* c);
  void flush(Conn* c);
  void flush_dirty();
  void mark_dirty(Conn* c);
  ByteBuffer& out_chunk(Conn* c);
  void append_envelope(Conn* c, const Envelope& env);
  void update_epoll_interest(Conn* c);
  void dispatch(Envelope env, Conn* src);
  void complete_response(Envelope env);
  void execute(int shard, Envelope env, int origin_ridx, uint64_t origin_gen);
  Conn* conn_to(const Addr& dst);
  void ship(const Addr& dst, const Envelope& env);
  void ship_now(const Addr& dst, const Envelope& env);
  void write_reply(uint64_t gen, const Envelope& out, const Addr& from);
  uint64_t add_timer(uint64_t at_us, uint64_t period_us,
                     std::function<void()> fn);
  void cancel_timer_local(uint64_t id);
  void run_due_timers();
  int next_timeout_ms() const;
};

thread_local TcpFabric::Reactor* TcpFabric::Reactor::current = nullptr;

// ------------------------------- Reactor ------------------------------------

TcpFabric::Reactor::~Reactor() {
  conns.for_each([this](Conn* c) {
    if (!c->closed && c->fd >= 0) ::close(c->fd);
    conns.erase(c);
    delete c;
  });
  for (Conn* c : graveyard) delete c;
  graveyard.clear();
  if (listen_fd >= 0) ::close(listen_fd);
  if (epoll_fd >= 0) ::close(epoll_fd);
  if (wake_fd >= 0) ::close(wake_fd);
}

bool TcpFabric::Reactor::setup() {
  sockaddr_in sa;
  if (!parse_addr(node->addr, &sa)) {
    LOG_ERROR << "TcpFabric: bad address " << node->addr;
    return false;
  }
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return false;
  int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Accept sharding: every reactor binds its own listening socket to the
  // node's address and the kernel distributes incoming connections.
  if (setsockopt(listen_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0 &&
      node->n_reactors() > 1) {
    LOG_ERROR << "TcpFabric " << node->addr << ": SO_REUSEPORT unavailable ("
              << std::strerror(errno) << ") but " << node->n_reactors()
              << " reactors requested";
    return false;
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    LOG_ERROR << "TcpFabric: bind " << node->addr
              << " failed: " << std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd, 512) != 0) return false;
  set_nonblock(listen_fd);

  epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    LOG_ERROR << "TcpFabric " << node->addr << " r" << idx
              << ": epoll_create1 failed: " << std::strerror(errno);
    return false;
  }
  if (wake_fd < 0) {
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0) return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) != 0) {
    LOG_ERROR << "TcpFabric " << node->addr << " r" << idx
              << ": epoll_ctl ADD listen failed: " << std::strerror(errno);
    return false;
  }
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    LOG_ERROR << "TcpFabric " << node->addr << " r" << idx
              << ": epoll_ctl ADD wake failed: " << std::strerror(errno);
    return false;
  }
  accept_paused = false;
  return true;
}

uint64_t TcpFabric::Reactor::add_timer(uint64_t at_us, uint64_t period_us,
                                       std::function<void()> fn) {
  const uint64_t id =
      (static_cast<uint64_t>(idx + 1) << kTimerRidxShift) | next_timer_seq++;
  auto it = timers.emplace(at_us, Timer{id, period_us, std::move(fn)});
  timers_by_id[id] = it;
  return id;
}

void TcpFabric::Reactor::cancel_timer_local(uint64_t id) {
  auto it = timers_by_id.find(id);
  if (it == timers_by_id.end()) return;
  timers.erase(it->second);
  timers_by_id.erase(it);
}

void TcpFabric::Reactor::run_due_timers() {
  const uint64_t now = real_now_us();
  // Fire timers one at a time; a fired timer may add or cancel others. Only
  // timers due at entry fire — anything a callback schedules for "now" waits
  // for the next loop iteration (next_timeout_ms returns 0 for it).
  while (!timers.empty() && timers.begin()->first <= now) {
    auto it = timers.begin();
    Timer t = std::move(it->second);
    timers_by_id.erase(t.id);
    timers.erase(it);
    if (t.period_us > 0) {
      auto re = timers.emplace(now + t.period_us, Timer{t.id, t.period_us, t.fn});
      timers_by_id[t.id] = re;
    }
    t.fn();
  }
}

int TcpFabric::Reactor::next_timeout_ms() const {
  if (timers.empty()) return 100;  // wake periodically regardless
  const uint64_t earliest = timers.begin()->first;
  const uint64_t now = real_now_us();
  if (earliest <= now) return 0;
  return static_cast<int>(std::min<uint64_t>((earliest - now) / 1000 + 1, 100));
}

void TcpFabric::Reactor::loop() {
  current = this;
  obs::set_reactor_tag(static_cast<uint32_t>(idx));
  epoll_event events[64];
  while (!node->stopping.load()) {
    const int n = epoll_wait(epoll_fd, events, 64, next_timeout_ms());
    if (node->stopping.load()) break;
    run_due_timers();
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        accept_ready();
      } else if (tag == kWakeTag) {
        uint64_t buf;
        while (::read(wake_fd, &buf, sizeof(buf)) > 0) {
        }
        wakeups->inc();
        drain_inbox();
      } else {
        Conn* c = static_cast<Conn*>(events[i].data.ptr);
        if (c->closed) continue;  // closed earlier in this batch
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(c);
          continue;
        }
        if (events[i].events & EPOLLIN) handle_readable(c);
        if (!c->closed && (events[i].events & EPOLLOUT)) flush(c);
      }
    }
    // Opportunistic drain: a task pushed after our epoll_wait returned would
    // otherwise wait for its eventfd edge next iteration.
    drain_inbox();
    // Deferred flush: everything shipped during this wakeup (timer fires,
    // funneled tasks, request dispatches, replies) drains per-connection in
    // one writev — N envelopes to one peer cost one syscall.
    flush_dirty();
    reap();
  }
  teardown();
  obs::set_reactor_tag(0);
  current = nullptr;
}

void TcpFabric::Reactor::drain_inbox() {
  queue_depth->set(static_cast<int64_t>(inbox.approx_depth()));
  while (auto task = inbox.pop()) (*task)();
}

void TcpFabric::Reactor::reap() {
  for (Conn* c : graveyard) delete c;
  graveyard.clear();
}

void TcpFabric::Reactor::teardown() {
  conns.for_each([this](Conn* c) {
    ::close(c->fd);
    conns.erase(c);
    delete c;
  });
  reap();
  conns_by_gen.clear();
  out_conns.clear();
  dirty_conns.clear();
  timers.clear();
  timers_by_id.clear();
  pending.clear();
  if (listen_fd >= 0) {
    ::close(listen_fd);
    listen_fd = -1;
  }
  if (epoll_fd >= 0) {
    ::close(epoll_fd);
    epoll_fd = -1;
  }
  // wake_fd intentionally stays open (see its declaration).
}

void TcpFabric::Reactor::accept_ready() {
  while (true) {
    int cfd = ::accept4(listen_fd, nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: stop accepting for a moment instead of
        // spinning on a level-triggered listen socket we cannot serve.
        LOG_WARN << "TcpFabric " << node->addr << " r" << idx
                 << ": accept failed (" << std::strerror(errno)
                 << "); pausing accepts 100ms";
        pause_accept();
        break;
      }
      LOG_WARN << "TcpFabric " << node->addr << " r" << idx
               << ": accept failed: " << std::strerror(errno);
      break;
    }
    set_nodelay(cfd);
    if (register_fd(cfd) != nullptr) accepts->inc();
  }
}

void TcpFabric::Reactor::pause_accept() {
  if (accept_paused) return;
  accept_paused = true;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr) != 0) {
    LOG_WARN << "TcpFabric " << node->addr << " r" << idx
             << ": epoll_ctl DEL listen failed: " << std::strerror(errno);
  }
  add_timer(real_now_us() + 100'000, 0, [this] { resume_accept(); });
}

void TcpFabric::Reactor::resume_accept() {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) != 0) {
    LOG_WARN << "TcpFabric " << node->addr << " r" << idx
             << ": re-arming listen failed (" << std::strerror(errno)
             << "); retrying in 100ms";
    add_timer(real_now_us() + 100'000, 0, [this] { resume_accept(); });
    return;
  }
  accept_paused = false;
}

TcpFabric::Reactor::Conn* TcpFabric::Reactor::register_fd(int fd) {
  Conn* c = new Conn();
  c->fd = fd;
  c->gen = next_gen++;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = c;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    LOG_WARN << "TcpFabric " << node->addr << " r" << idx
             << ": epoll_ctl ADD conn failed: " << std::strerror(errno);
    ::close(fd);
    delete c;
    return nullptr;
  }
  conns.push_back(c);
  conns_by_gen[c->gen] = c;
  return c;
}

void TcpFabric::Reactor::close_conn(Conn* c) {
  if (c->closed) return;
  c->closed = true;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr) != 0) {
    LOG_WARN << "TcpFabric " << node->addr << " r" << idx
             << ": epoll_ctl DEL conn failed: " << std::strerror(errno);
  }
  ::close(c->fd);
  conns.erase(c);
  conns_by_gen.erase(c->gen);
  if (!c->peer.empty()) {
    auto it = out_conns.find(c->peer);
    if (it != out_conns.end() && it->second == c) out_conns.erase(it);
  }
  for (auto& b : c->wq) pool.release(std::move(b));
  c->wq.clear();
  graveyard.push_back(c);
}

void TcpFabric::Reactor::handle_readable(Conn* c) {
  constexpr size_t kReadChunk = 64 * 1024;
  while (true) {
    // read(2) straight into the buffer tail — no bounce through a stack
    // buffer and no erase(0, n) memmove afterwards (consume is O(1)).
    char* dst = c->rbuf.prepare(kReadChunk);
    ssize_t n = ::read(c->fd, dst, kReadChunk);
    if (n > 0) {
      c->rbuf.commit(static_cast<size_t>(n));
      if (static_cast<size_t>(n) < kReadChunk) break;  // drained the socket
    } else {
      c->rbuf.commit(0);
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
        close_conn(c);
        return;
      }
      break;
    }
  }
  while (!c->closed) {
    Envelope env;
    size_t consumed = 0;
    Status s = decode_envelope(c->rbuf.readable(), &env, &consumed);
    if (!s.ok()) {
      LOG_WARN << "TcpFabric " << node->addr << " r" << idx
               << ": corrupt stream from fd " << c->fd << ": " << s.to_string();
      close_conn(c);
      return;
    }
    if (consumed == 0) break;
    c->rbuf.consume(consumed);
    dispatch(std::move(env), c);
  }
}

void TcpFabric::Reactor::dispatch(Envelope env, Conn* src) {
  Node* nd = node;
  if (env.kind == EnvelopeKind::kResponse) {
    // Responses belong to the reactor that issued the call (low rpc-id
    // bits). They normally arrive on that reactor's own outbound connection;
    // an addr-dialed reply may land anywhere and is funneled across.
    const int target = static_cast<int>(env.rpc_id & kRidxMask);
    if (target != idx && target < nd->n_reactors()) {
      Reactor* tr = nd->reactors[static_cast<size_t>(target)].get();
      tr->post([tr, env = std::move(env)]() mutable {
        tr->complete_response(std::move(env));
      });
      return;
    }
    complete_response(std::move(env));
    return;
  }
  // Requests and one-ways run on the reactor owning their shard: shard k of
  // a sharded service lives on reactor (k % reactors); everything else is
  // serialized on the node's home reactor, preserving the single-threaded
  // controlet model.
  int shard = 0;
  int owner = 0;
  if (nd->svc->shards() > 1) {
    shard = nd->svc->shard_of(env.msg);
    owner = shard % nd->n_reactors();
  }
  const uint64_t gen = (src != nullptr) ? src->gen : 0;
  if (owner != idx) {
    Reactor* tr = nd->reactors[static_cast<size_t>(owner)].get();
    const int origin = idx;
    tr->post([tr, shard, origin, gen, env = std::move(env)]() mutable {
      tr->execute(shard, std::move(env), origin, gen);
    });
    return;
  }
  execute(shard, std::move(env), idx, gen);
}

void TcpFabric::Reactor::complete_response(Envelope env) {
  auto it = pending.find(env.rpc_id);
  if (it == pending.end()) return;  // already timed out
  RpcCallback cb = std::move(it->second.cb);
  cancel_timer_local(it->second.timer_id);
  pending.erase(it);
  cb(Status::Ok(), std::move(env.msg));
}

void TcpFabric::Reactor::execute(int shard, Envelope env, int origin_ridx,
                                 uint64_t origin_gen) {
  Node* nd = node;
  const Addr from = env.from;
  Replier reply;
  if (env.kind == EnvelopeKind::kRequest) {
    const uint64_t rpc_id = env.rpc_id;
    reply = [nd, from, rpc_id, origin_ridx, origin_gen](Message resp) {
      nd->reply_to(from, rpc_id, std::move(resp), origin_ridx, origin_gen);
    };
  } else {
    reply = [](Message) {};
  }
  if (obs::handle_admin(*nd->rt, env.msg, reply)) return;
  obs::DispatchSpan span(*nd->rt, env.msg);
  reply = span.wrap(std::move(reply));
  if (nd->svc->shards() > 1) {
    nd->svc->handle_shard(shard, from, std::move(env.msg), std::move(reply));
  } else {
    nd->svc->handle(from, std::move(env.msg), std::move(reply));
  }
}

TcpFabric::Reactor::Conn* TcpFabric::Reactor::conn_to(const Addr& dst) {
  auto it = out_conns.find(dst);
  if (it != out_conns.end()) return it->second;
  sockaddr_in sa;
  if (!parse_addr(dst, &sa)) return nullptr;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  // Loopback connects complete immediately in practice; block briefly here
  // rather than implementing full async connect state tracking.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return nullptr;
  }
  set_nonblock(fd);
  set_nodelay(fd);
  Conn* c = register_fd(fd);
  if (c == nullptr) return nullptr;
  c->peer = dst;
  out_conns[dst] = c;
  return c;
}

// Picks the chunk append_envelope encodes into: the current tail until it
// crosses kChunkBytes, then a fresh chunk from the reactor's pool.
ByteBuffer& TcpFabric::Reactor::out_chunk(Conn* c) {
  if (c->wq.empty() || c->wq.back().backing().size() >= kChunkBytes) {
    c->wq.push_back(pool.acquire());
  }
  return c->wq.back();
}

void TcpFabric::Reactor::mark_dirty(Conn* c) {
  if (c->dirty) return;
  c->dirty = true;
  dirty_conns.push_back(c);
}

// Zero-copy enqueue plus backpressure accounting: the envelope serializes
// directly into the connection's tail chunk. Crossing the hi watermark corks
// the connection (we stop reading from a peer we cannot answer); crossing
// the cap closes it as a dead or runaway consumer.
void TcpFabric::Reactor::append_envelope(Conn* c, const Envelope& env) {
  ByteBuffer& chunk = out_chunk(c);
  const size_t before = chunk.size();
  encode_envelope(env, &chunk);
  c->pending += chunk.size() - before;
  node->msgs_sent->inc();
  mark_dirty(c);
  const TcpFabricOpts& o = node->fab->opts_;
  if (c->pending > o.send_queue_cap) {
    LOG_WARN << "TcpFabric " << node->addr << " r" << idx << ": send queue ("
             << c->pending << " bytes) over cap; closing slow consumer fd "
             << c->fd;
    close_conn(c);
    return;
  }
  if (!c->corked && c->pending > o.send_hi_watermark) {
    c->corked = true;
    stalls->inc();
    update_epoll_interest(c);
  }
}

void TcpFabric::Reactor::update_epoll_interest(Conn* c) {
  epoll_event ev{};
  ev.events = (c->corked ? 0u : EPOLLIN) | (c->want_write ? EPOLLOUT : 0u);
  ev.data.ptr = c;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev) != 0) {
    LOG_WARN << "TcpFabric " << node->addr << " r" << idx
             << ": epoll_ctl MOD failed: " << std::strerror(errno);
    close_conn(c);
  }
}

void TcpFabric::Reactor::flush_dirty() {
  while (!dirty_conns.empty()) {
    std::vector<Conn*> batch;
    batch.swap(dirty_conns);
    for (Conn* c : batch) {
      if (!c->closed) flush(c);
    }
  }
}

void TcpFabric::Reactor::flush(Conn* c) {
  if (c->closed) return;
  c->dirty = false;
  bool wrote = false;
  while (!c->wq.empty() && !c->wq.front().empty()) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    for (const auto& b : c->wq) {
      if (iovcnt == kMaxIov) break;
      std::string_view v = b.readable();
      if (v.empty()) continue;
      iov[iovcnt].iov_base = const_cast<char*>(v.data());
      iov[iovcnt].iov_len = v.size();
      ++iovcnt;
    }
    if (iovcnt == 0) break;
    ssize_t n = ::writev(c->fd, iov, iovcnt);
    if (n > 0) {
      wrote = true;
      node->bytes_sent->inc(static_cast<uint64_t>(n));
      c->pending -= std::min(c->pending, static_cast<size_t>(n));
      size_t left = static_cast<size_t>(n);
      while (left > 0) {
        ByteBuffer& head = c->wq.front();
        const size_t take = std::min(left, head.size());
        head.consume(take);
        left -= take;
        if (head.empty() && c->wq.size() > 1) {
          // Fully drained and not the active tail: recycle through the pool
          // so the next burst (on any connection) reuses the allocation.
          pool.release(std::move(head));
          c->wq.pop_front();
        }
      }
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      close_conn(c);
      return;
    }
  }
  if (wrote) node->flushes->inc();
  const bool want = !c->wq.empty() && !c->wq.front().empty();
  bool mod = false;
  if (want != c->want_write) {
    c->want_write = want;
    mod = true;
  }
  if (c->corked && c->pending <= node->fab->opts_.send_lo_watermark) {
    c->corked = false;
    mod = true;
  }
  if (mod) update_epoll_interest(c);
}

void TcpFabric::Reactor::ship(const Addr& dst, const Envelope& env) {
  // Chaos hook: the injector's verdict applies once per send; delayed and
  // duplicated copies go straight to ship_now so they are not re-judged.
  if (auto fi = node->fab->fault_injector()) {
    const FaultDecision d = fi->on_message(node->addr, dst, real_now_us());
    if (d.drop) {
      node->msgs_dropped->inc();
      return;
    }
    if (d.delay_us > 0) {
      // ship() only runs on this reactor's thread, so the timer manipulation
      // and the deferred re-ship both stay on this reactor's loop.
      add_timer(real_now_us() + d.delay_us, 0,
                [this, dst, env, dup = d.duplicate] {
                  ship_now(dst, env);
                  if (dup) ship_now(dst, env);
                });
      return;
    }
    if (d.duplicate) ship_now(dst, env);
  }
  ship_now(dst, env);
}

void TcpFabric::Reactor::ship_now(const Addr& dst, const Envelope& env) {
  if (node->fab->severed(node->addr, dst)) {  // partition: drop outgoing
    node->msgs_dropped->inc();
    LOG_DEBUG << "TcpFabric " << node->addr << ": dropped envelope to " << dst
              << " (partitioned)";
    return;
  }
  Conn* c = conn_to(dst);
  if (c == nullptr) {  // peer dead: caller's timeout handles it
    node->msgs_dropped->inc();
    LOG_DEBUG << "TcpFabric " << node->addr << ": dropped envelope to " << dst
              << " (connect failed)";
    return;
  }
  append_envelope(c, env);
}

void TcpFabric::Reactor::write_reply(uint64_t gen, const Envelope& out,
                                     const Addr& from) {
  if (gen != 0) {
    auto it = conns_by_gen.find(gen);
    if (it != conns_by_gen.end()) {
      append_envelope(it->second, out);
      return;
    }
  }
  // The inbound connection is gone (or the request was locally injected):
  // fall back to dialing the peer's listen address. The fault verdict was
  // already applied upstream, so this must not re-judge.
  ship_now(from, out);
}

// -------------------------------- Node --------------------------------------

TcpFabric::Reactor* TcpFabric::Node::here() {
  Reactor* r = Reactor::current;
  return (r != nullptr && r->node == this) ? r : home();
}

void TcpFabric::Node::wake_all() {
  for (auto& r : reactors) r->wake();
}

void TcpFabric::Node::reply_to(const Addr& from, uint64_t rpc_id, Message resp,
                               int origin_ridx, uint64_t origin_gen) {
  if (stopping.load()) return;
  Envelope out;
  out.rpc_id = rpc_id;
  out.kind = EnvelopeKind::kResponse;
  out.from = addr;
  out.msg = std::move(resp);
  // The fault verdict applies once, on the reactor executing the reply.
  if (auto fi = fab->fault_injector()) {
    const FaultDecision d = fi->on_message(addr, from, real_now_us());
    if (d.drop) {
      msgs_dropped->inc();
      return;
    }
    if (d.delay_us > 0) {
      here()->add_timer(
          real_now_us() + d.delay_us, 0,
          [this, from, origin_ridx, origin_gen, out, dup = d.duplicate] {
            deliver_reply(out, from, origin_ridx, origin_gen);
            if (dup) deliver_reply(out, from, origin_ridx, origin_gen);
          });
      return;
    }
    if (d.duplicate) deliver_reply(out, from, origin_ridx, origin_gen);
  }
  deliver_reply(std::move(out), from, origin_ridx, origin_gen);
}

void TcpFabric::Node::deliver_reply(Envelope out, const Addr& from,
                                    int origin_ridx, uint64_t origin_gen) {
  if (fab->severed(addr, from)) {  // partition severed after dispatch
    msgs_dropped->inc();
    LOG_DEBUG << "TcpFabric " << addr << ": dropped reply to " << from
              << " (partitioned)";
    return;
  }
  Reactor* origin = (origin_ridx >= 0 && origin_ridx < n_reactors())
                        ? reactors[static_cast<size_t>(origin_ridx)].get()
                        : home();
  if (Reactor::current == origin) {
    origin->write_reply(origin_gen, out, from);
  } else {
    origin->post([origin, out = std::move(out), from, origin_gen]() mutable {
      origin->write_reply(origin_gen, out, from);
    });
  }
}

// ----------------------------- TcpRuntime ----------------------------------

void TcpFabric::TcpRuntime::post(std::function<void()> fn) {
  node_->here()->post(std::move(fn));
}

uint64_t TcpFabric::TcpRuntime::set_timer(uint64_t delay_us,
                                          std::function<void()> fn) {
  // Timers are manipulated on the owning reactor's thread only (services run
  // there); external threads must post() first. Calls made before the loop
  // threads start (Service::start) land on the home reactor.
  return node_->here()->add_timer(real_now_us() + delay_us, 0, std::move(fn));
}

uint64_t TcpFabric::TcpRuntime::set_periodic(uint64_t period_us,
                                             std::function<void()> fn) {
  return node_->here()->add_timer(real_now_us() + period_us, period_us,
                                  std::move(fn));
}

void TcpFabric::TcpRuntime::cancel_timer(uint64_t id) {
  if (id == 0) return;
  const int target = static_cast<int>(id >> kTimerRidxShift) - 1;
  if (target < 0 || target >= node_->n_reactors()) return;
  Reactor* r = node_->reactors[static_cast<size_t>(target)].get();
  if (Reactor::current == r || !r->thread.joinable()) {
    // On the owner (the hot path: every RPC response cancels its timeout
    // there) or no loop thread is running yet/anymore — mutate directly.
    r->cancel_timer_local(id);
  } else {
    r->post([r, id] { r->cancel_timer_local(id); });
  }
}

void TcpFabric::TcpRuntime::call(const Addr& dst, Message req, RpcCallback cb,
                                 uint64_t timeout_us) {
  obs::stamp_outgoing(*this, req);
  Reactor* r = node_->here();
  const uint64_t rpc_id =
      (fab_->next_rpc_id_.fetch_add(1) << kRidxBits) |
      static_cast<uint64_t>(r->idx);
  // The response path cancels this timer; without that, every completed RPC
  // would leave a dead timer behind for timeout_us and a busy client drowns
  // in stale entries.
  const uint64_t timer_id =
      r->add_timer(real_now_us() + timeout_us, 0, [r, rpc_id] {
        auto it = r->pending.find(rpc_id);
        if (it == r->pending.end()) return;
        RpcCallback cb = std::move(it->second.cb);
        r->pending.erase(it);
        cb(Status::Timeout("rpc timeout"), Message{});
      });
  r->pending[rpc_id] = Reactor::PendingRpc{std::move(cb), timer_id};
  Envelope env;
  env.rpc_id = rpc_id;
  env.kind = EnvelopeKind::kRequest;
  env.from = addr_;
  env.msg = std::move(req);
  r->ship(dst, env);
}

void TcpFabric::TcpRuntime::send(const Addr& dst, Message msg) {
  obs::stamp_outgoing(*this, msg);
  Envelope env;
  env.kind = EnvelopeKind::kOneWay;
  env.from = addr_;
  env.msg = std::move(msg);
  node_->here()->ship(dst, env);
}

Rng& TcpFabric::TcpRuntime::rng() { return node_->here()->rng; }

// ------------------------------ TcpFabric ----------------------------------

TcpFabric::TcpFabric(TcpFabricOpts opts) : opts_(opts) {
  if (opts_.reactors <= 0) {
    const char* env = std::getenv("BKV_TCP_REACTORS");
    opts_.reactors = (env != nullptr) ? std::atoi(env) : 1;
  }
  opts_.reactors = std::clamp(opts_.reactors, 1, kMaxReactors);
  if (opts_.send_lo_watermark > opts_.send_hi_watermark) {
    opts_.send_lo_watermark = opts_.send_hi_watermark / 4;
  }
  if (opts_.send_queue_cap < 2 * opts_.send_hi_watermark) {
    opts_.send_queue_cap = 2 * opts_.send_hi_watermark;
  }
  const int port = pick_port();
  // The hidden client node for call_sync: one reactor is plenty.
  external_ = add_node_with_reactors(
      "127.0.0.1:" + std::to_string(port),
      std::make_shared<LambdaService>(
          [](Runtime&, const Addr&, Message, Replier reply) {
            reply(Message::reply(Code::kInvalid));
          }),
      1);
}

TcpFabric::~TcpFabric() { shutdown(); }

Runtime* TcpFabric::add_node(const Addr& addr, std::shared_ptr<Service> svc) {
  return add_node_with_reactors(addr, std::move(svc), opts_.reactors);
}

Runtime* TcpFabric::add_node_with_reactors(const Addr& addr,
                                           std::shared_ptr<Service> svc,
                                           int reactors) {
  auto node = std::make_shared<Node>();
  node->fab = this;
  node->addr = addr;
  node->svc = std::move(svc);
  node->rt = std::make_unique<TcpRuntime>(this, node.get(), addr);
  obs::MetricsRegistry& m = node->rt->obs().metrics();
  node->msgs_sent = &m.counter("net.msgs_sent");
  node->msgs_dropped = &m.counter("net.msgs_dropped");
  node->bytes_sent = &m.counter("net.bytes_sent");
  node->flushes = &m.counter("net.flushes");
  for (int i = 0; i < reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->node = node.get();
    r->idx = i;
    r->pool = BufferPool(opts_.pool_buffers, kChunkBytes);
    r->rng = Rng(fnv1a64(addr) + 0x9e3779b97f4a7c15ULL * uint64_t(i + 1));
    const std::string p = "net.r" + std::to_string(i) + ".";
    r->accepts = &m.counter(p + "accepts");
    r->wakeups = &m.counter(p + "wakeups");
    r->stalls = &m.counter(p + "stalls");
    r->queue_depth = &m.gauge(p + "queue_depth");
    node->reactors.push_back(std::move(r));
  }
  for (auto& r : node->reactors) {
    if (!r->setup()) {
      LOG_ERROR << "TcpFabric: failed to set up node " << addr;
      return nullptr;
    }
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    nodes_[addr] = node;
  }
  // start() runs before any reactor thread exists, so services may install
  // timers and resolve metric handles without synchronization.
  node->svc->start(*node->rt);
  for (auto& r : node->reactors) {
    Reactor* rp = r.get();
    r->thread = std::thread([rp] { rp->loop(); });
  }
  return node->rt.get();
}

std::shared_ptr<TcpFabric::Node> TcpFabric::find(const Addr& addr) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second;
}

bool TcpFabric::severed(const Addr& a, const Addr& b) const {
  std::lock_guard<std::mutex> g(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return cuts_.count(key) > 0;
}

void TcpFabric::kill(const Addr& addr) {
  auto node = find(addr);
  if (!node) return;
  node->svc->stop();
  node->alive.store(false);
  node->stopping.store(true);
  node->wake_all();
  for (auto& r : node->reactors) {
    if (r->thread.joinable()) r->thread.join();
  }
}

bool TcpFabric::alive(const Addr& addr) const {
  auto node = find(addr);
  return node && node->alive.load();
}

bool TcpFabric::restart(const Addr& addr) {
  auto node = find(addr);
  if (!node || node->alive.load()) return false;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shut_down_) return false;
  }
  for (auto& r : node->reactors) {
    if (r->thread.joinable()) r->thread.join();
  }
  // The old loops tore down their fds/timers/conns on the way out; drain
  // whatever cross-thread tasks queued while the node was dead.
  for (auto& r : node->reactors) {
    while (r->inbox.pop()) {
    }
  }
  node->stopping.store(false);
  for (auto& r : node->reactors) {
    if (!r->setup()) {
      LOG_ERROR << "TcpFabric: restart of " << addr << " failed to re-bind";
      return false;
    }
  }
  node->alive.store(true);
  node->svc->start(*node->rt);
  for (auto& r : node->reactors) {
    Reactor* rp = r.get();
    r->thread = std::thread([rp] { rp->loop(); });
  }
  return true;
}

void TcpFabric::partition(const Addr& a, const Addr& b, bool cut) {
  std::lock_guard<std::mutex> g(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (cut) {
    cuts_.insert(key);
  } else {
    cuts_.erase(key);
  }
}

void TcpFabric::shutdown() {
  std::vector<std::shared_ptr<Node>> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& [addr, node] : nodes_) all.push_back(node);
  }
  for (auto& node : all) {
    if (node->alive.load()) node->svc->stop();
    node->alive.store(false);
    node->stopping.store(true);
    node->wake_all();
  }
  for (auto& node : all) {
    for (auto& r : node->reactors) {
      if (r->thread.joinable()) r->thread.join();
    }
  }
}

Result<Message> TcpFabric::call_sync(const Addr& dst, Message req,
                                     uint64_t timeout_us) {
  auto prom = std::make_shared<std::promise<Result<Message>>>();
  auto fut = prom->get_future();
  external_->post([this, dst, req = std::move(req), prom, timeout_us]() mutable {
    external_->call(
        dst, std::move(req),
        [prom](Status s, Message m) {
          if (s.ok()) {
            prom->set_value(std::move(m));
          } else {
            prom->set_value(s);
          }
        },
        timeout_us);
  });
  return fut.get();
}

int TcpFabric::pick_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(sa);
  getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  const int port = ntohs(sa.sin_port);
  ::close(fd);
  return port;
}

}  // namespace bespokv
