// Fault injection shared by all three fabrics (sim / thread / TCP).
//
// A FaultPlan is a seeded, JSON-serializable chaos schedule: per-link
// drop/delay/duplicate/reorder rules, node crash/restart events, and
// windowed network partitions (symmetric or one-way node-set splits). The
// same plan file drives identical fault decisions on every fabric — the
// injector consumes its own deterministic RNG stream, so a failing nightly
// run can be replayed locally from the uploaded plan (deterministically on
// SimFabric; statistically on the real-time fabrics).
//
// Wiring: Fabric::set_fault_injector installs an injector that each fabric
// consults at its single send choke point (SimFabric::transmit,
// ThreadFabric's mailbox delivery, TcpFabric::Node::ship). Node events are
// driven by schedule_node_faults() from any runtime whose node outlives the
// plan (the cluster admin node in practice).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/runtime.h"

namespace bespokv {

// One per-link rule. `src`/`dst` are fabric addresses, "*" (everything) or a
// trailing-star prefix ("bkv/s0*"). Probabilities are per message.
struct LinkFault {
  std::string src = "*";
  std::string dst = "*";
  double drop = 0.0;       // message silently lost
  double duplicate = 0.0;  // message delivered twice
  double reorder = 0.0;    // message held back by a random extra delay so
                           // later traffic on the link can overtake it
  uint64_t delay_us = 0;   // fixed extra one-way delay on every message
  uint64_t jitter_us = 0;  // uniform extra [0, jitter] per delayed/reordered msg
  uint64_t after_us = 0;   // rule active from this offset (relative to arming)
  uint64_t until_us = 0;   // rule inactive after this offset (0 = forever)
};

// One node lifecycle event: crash-stop at crash_at_us, optionally restart in
// place (same address, same Service object) at restart_at_us.
//
// Incarnation note: link rules and partitions key on *addresses*, not
// incarnations. A node revived by Fabric::restart keeps its address, so any
// fault window still open at restart time keeps applying to the revived
// node. This is deliberate — a real network outage does not heal because a
// process restarted inside it (regression-tested in fault_injection_test).
struct NodeFault {
  std::string node;
  uint64_t crash_at_us = 0;
  uint64_t restart_at_us = 0;  // 0 = stays down
};

// Whole-cluster power loss: every node whose address matches `match` (same
// pattern syntax as LinkFault src/dst) crashes at `at_us`, each staggered by
// `stagger_us` from the previous one in materialization order (a real rack
// outage never cuts every PSU in the same microsecond), and restarts
// `restart_after_us` after its own crash instant. The pattern form keeps the
// plan portable across cluster sizes; materialized() expands it against the
// concrete node list before scheduling.
struct CrashAllFault {
  std::string match = "*";
  uint64_t at_us = 0;
  uint64_t restart_after_us = 0;  // 0 = the whole cluster stays down
  uint64_t stagger_us = 0;
  std::vector<NodeFault> materialized(
      const std::vector<std::string>& nodes) const;
};

// A network partition: the node sets matching `a` and `b` lose connectivity
// during [after_us, until_us) and heal when the window closes (until_us = 0
// never heals). `symmetric` cuts both directions; an asymmetric entry cuts
// only a -> b traffic — b can still reach a, which models one-way link loss
// (e.g. a master whose heartbeats are lost while the coordinator's verdicts
// still arrive, or vice versa). Patterns match like LinkFault src/dst: "*",
// trailing-star prefix, or exact address. Compiled onto the same per-link
// injector choke point as link rules, so partitions behave identically on
// sim/thread/TCP fabrics.
struct PartitionFault {
  std::vector<std::string> a;
  std::vector<std::string> b;
  bool symmetric = true;
  uint64_t after_us = 0;
  uint64_t until_us = 0;  // heal instant (0 = forever)
};

// Envelope for FaultPlan::random: which fault classes a generated plan may
// contain and how hard they may hit. The defaults match the chaos sweep's
// proven-stable envelope: bounded-window link noise, optional crash+restart.
struct RandomFaultOpts {
  bool drops = true;
  bool duplicates = true;
  bool delays = true;
  bool reorders = true;
  double max_drop = 0.02;        // per-message ceiling for generated rules
  double max_duplicate = 0.05;
  uint64_t max_delay_us = 2'000;
  // Every generated link rule deactivates by this offset, so the cluster can
  // converge before verification reads run.
  uint64_t window_us = 8'000'000;
  // When non-empty: generate one crash-stop of this node, restarting in
  // place a few seconds later (always restarts — plans that leave a node
  // down for good are written by hand, not drawn at random).
  std::string crash_node;
  uint64_t crash_after_us = 200'000;   // earliest crash instant
  uint64_t crash_spread_us = 400'000;  // crash lands in [after, after+spread)
  uint64_t restart_delay_us = 3'000'000;
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<LinkFault> links;
  std::vector<NodeFault> nodes;
  std::vector<PartitionFault> partitions;
  std::vector<CrashAllFault> crash_all;

  Json to_json() const;
  static Result<FaultPlan> from_json(const Json& j);
  std::string encode() const { return to_json().dump(2); }
  static Result<FaultPlan> decode(std::string_view text);

  // Derives a reproducible chaos schedule from `seed`: 1-3 link-noise rules
  // within the allowed classes plus the optional crash/restart. The same
  // seed and opts always yield the same plan (scenario generation and the
  // nightly sweeps both lean on this).
  static FaultPlan random(uint64_t seed, const RandomFaultOpts& opts = {});
};

// Verdict for one message on one link.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  uint64_t delay_us = 0;
};

// Thread-safe (the TCP/thread fabrics consult it from multiple node threads)
// and deterministic given the same plan and the same decision sequence.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Sets t=0 for the rules' active windows. Lazily armed by the first
  // decision if never called explicitly.
  void arm(uint64_t now_us);

  FaultDecision on_message(const Addr& src, const Addr& dst, uint64_t now_us);

  const FaultPlan& plan() const { return plan_; }

  // Tallies for tests and the chaos driver's failure reports.
  uint64_t decided() const;
  uint64_t dropped() const;
  uint64_t duplicated() const;
  uint64_t delayed() const;
  // Messages dropped because a partition entry severed their link (a subset
  // of dropped()).
  uint64_t partitioned() const;

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  Rng rng_;
  bool armed_ = false;
  uint64_t origin_us_ = 0;
  uint64_t decided_ = 0, dropped_ = 0, duplicated_ = 0, delayed_ = 0;
  uint64_t partitioned_ = 0;
};

// "*" matches everything; a trailing '*' matches by prefix; otherwise exact.
bool fault_addr_match(const std::string& pattern, const Addr& addr);

// Schedules the plan's node crash/restart events as timers on `rt` (which
// must belong to a node the plan never kills). Works on every fabric and
// clock: virtual time on SimFabric, wall clock elsewhere.
void schedule_node_faults(Runtime& rt, Fabric& fab, const FaultPlan& plan);

}  // namespace bespokv
