#include "src/net/fault.h"

#include <algorithm>

#include "src/common/logging.h"

namespace bespokv {

namespace {

Json link_to_json(const LinkFault& l) {
  Json j = Json::object();
  j.set("src", Json::string(l.src));
  j.set("dst", Json::string(l.dst));
  if (l.drop > 0) j.set("drop", Json::number(l.drop));
  if (l.duplicate > 0) j.set("duplicate", Json::number(l.duplicate));
  if (l.reorder > 0) j.set("reorder", Json::number(l.reorder));
  if (l.delay_us > 0) j.set("delay_us", Json::number(double(l.delay_us)));
  if (l.jitter_us > 0) j.set("jitter_us", Json::number(double(l.jitter_us)));
  if (l.after_us > 0) j.set("after_us", Json::number(double(l.after_us)));
  if (l.until_us > 0) j.set("until_us", Json::number(double(l.until_us)));
  return j;
}

Json node_to_json(const NodeFault& n) {
  Json j = Json::object();
  j.set("node", Json::string(n.node));
  j.set("crash_at_us", Json::number(double(n.crash_at_us)));
  if (n.restart_at_us > 0) {
    j.set("restart_at_us", Json::number(double(n.restart_at_us)));
  }
  return j;
}

Json partition_to_json(const PartitionFault& p) {
  Json j = Json::object();
  Json a = Json::array();
  for (const auto& s : p.a) a.push(Json::string(s));
  j.set("a", std::move(a));
  Json b = Json::array();
  for (const auto& s : p.b) b.push(Json::string(s));
  j.set("b", std::move(b));
  if (!p.symmetric) j.set("symmetric", Json::boolean(false));
  if (p.after_us > 0) j.set("after_us", Json::number(double(p.after_us)));
  if (p.until_us > 0) j.set("until_us", Json::number(double(p.until_us)));
  return j;
}

bool match_any(const std::vector<std::string>& patterns, const Addr& addr) {
  for (const auto& p : patterns) {
    if (fault_addr_match(p, addr)) return true;
  }
  return false;
}

double num_or(const Json& j, const char* key, double dflt) {
  const Json& v = j.get(key);
  return v.is_number() ? v.as_number() : dflt;
}

std::string str_or(const Json& j, const char* key, const char* dflt) {
  const Json& v = j.get(key);
  return v.is_string() ? v.as_string() : dflt;
}

}  // namespace

Json FaultPlan::to_json() const {
  Json j = Json::object();
  // Json numbers are doubles: seeds must stay below 2^53 to round-trip.
  j.set("seed", Json::number(double(seed)));
  Json larr = Json::array();
  for (const auto& l : links) larr.push(link_to_json(l));
  j.set("links", std::move(larr));
  Json narr = Json::array();
  for (const auto& n : nodes) narr.push(node_to_json(n));
  j.set("nodes", std::move(narr));
  if (!partitions.empty()) {
    Json parr = Json::array();
    for (const auto& p : partitions) parr.push(partition_to_json(p));
    j.set("partitions", std::move(parr));
  }
  if (!crash_all.empty()) {
    Json carr = Json::array();
    for (const auto& c : crash_all) {
      Json cj = Json::object();
      cj.set("match", Json::string(c.match));
      cj.set("at_us", Json::number(double(c.at_us)));
      if (c.restart_after_us > 0) {
        cj.set("restart_after_us", Json::number(double(c.restart_after_us)));
      }
      if (c.stagger_us > 0) {
        cj.set("stagger_us", Json::number(double(c.stagger_us)));
      }
      carr.push(std::move(cj));
    }
    j.set("crash_all", std::move(carr));
  }
  return j;
}

Result<FaultPlan> FaultPlan::from_json(const Json& j) {
  FaultPlan p;
  p.seed = uint64_t(num_or(j, "seed", 1));
  {
    for (const Json& lj : j.get("links").elements()) {
      LinkFault l;
      l.src = str_or(lj, "src", "*");
      l.dst = str_or(lj, "dst", "*");
      l.drop = num_or(lj, "drop", 0);
      l.duplicate = num_or(lj, "duplicate", 0);
      l.reorder = num_or(lj, "reorder", 0);
      l.delay_us = uint64_t(num_or(lj, "delay_us", 0));
      l.jitter_us = uint64_t(num_or(lj, "jitter_us", 0));
      l.after_us = uint64_t(num_or(lj, "after_us", 0));
      l.until_us = uint64_t(num_or(lj, "until_us", 0));
      if (l.drop < 0 || l.drop > 1 || l.duplicate < 0 || l.duplicate > 1 ||
          l.reorder < 0 || l.reorder > 1) {
        return Status::Invalid("fault probability out of [0,1]");
      }
      p.links.push_back(std::move(l));
    }
  }
  {
    for (const Json& nj : j.get("nodes").elements()) {
      NodeFault n;
      n.node = str_or(nj, "node", "");
      if (n.node.empty()) return Status::Invalid("node fault without a node");
      n.crash_at_us = uint64_t(num_or(nj, "crash_at_us", 0));
      n.restart_at_us = uint64_t(num_or(nj, "restart_at_us", 0));
      if (n.restart_at_us != 0 && n.restart_at_us <= n.crash_at_us) {
        return Status::Invalid("restart_at_us must be after crash_at_us");
      }
      p.nodes.push_back(std::move(n));
    }
  }
  {
    for (const Json& pj : j.get("partitions").elements()) {
      PartitionFault pf;
      for (const Json& e : pj.get("a").elements()) {
        if (e.is_string()) pf.a.push_back(e.as_string());
      }
      for (const Json& e : pj.get("b").elements()) {
        if (e.is_string()) pf.b.push_back(e.as_string());
      }
      if (pf.a.empty() || pf.b.empty()) {
        return Status::Invalid("partition fault needs both node sets");
      }
      pf.symmetric = pj.get("symmetric").as_bool(true);
      pf.after_us = uint64_t(num_or(pj, "after_us", 0));
      pf.until_us = uint64_t(num_or(pj, "until_us", 0));
      if (pf.until_us != 0 && pf.until_us <= pf.after_us) {
        return Status::Invalid("partition until_us must be after after_us");
      }
      p.partitions.push_back(std::move(pf));
    }
  }
  {
    for (const Json& cj : j.get("crash_all").elements()) {
      CrashAllFault c;
      c.match = str_or(cj, "match", "*");
      c.at_us = uint64_t(num_or(cj, "at_us", 0));
      c.restart_after_us = uint64_t(num_or(cj, "restart_after_us", 0));
      c.stagger_us = uint64_t(num_or(cj, "stagger_us", 0));
      p.crash_all.push_back(std::move(c));
    }
  }
  return p;
}

std::vector<NodeFault> CrashAllFault::materialized(
    const std::vector<std::string>& nodes) const {
  std::vector<NodeFault> out;
  for (const std::string& node : nodes) {
    if (!fault_addr_match(match, node)) continue;
    NodeFault n;
    n.node = node;
    n.crash_at_us = at_us + out.size() * stagger_us;
    if (restart_after_us > 0) {
      n.restart_at_us = n.crash_at_us + restart_after_us;
    }
    out.push_back(std::move(n));
  }
  return out;
}

Result<FaultPlan> FaultPlan::decode(std::string_view text) {
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  return from_json(j.value());
}

FaultPlan FaultPlan::random(uint64_t seed, const RandomFaultOpts& opts) {
  // Decorrelate from the injector's own decision stream, which is seeded
  // with plan.seed itself.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  FaultPlan p;
  p.seed = seed;
  const int rules = 1 + static_cast<int>(rng.next_u64(3));
  for (int i = 0; i < rules; ++i) {
    LinkFault l;  // src/dst stay "*": noise hits every link uniformly
    if (opts.drops && rng.next_bool(0.7)) {
      l.drop = opts.max_drop * (0.25 + 0.75 * rng.next_double());
    }
    if (opts.duplicates && rng.next_bool(0.5)) {
      l.duplicate = opts.max_duplicate * (0.25 + 0.75 * rng.next_double());
    }
    if (opts.delays && rng.next_bool(0.5)) {
      l.delay_us = 1 + rng.next_u64(opts.max_delay_us);
      l.jitter_us = rng.next_u64(opts.max_delay_us);
    }
    if (opts.reorders && rng.next_bool(0.4)) {
      l.reorder = 0.05 + 0.15 * rng.next_double();
    }
    if (l.drop == 0 && l.duplicate == 0 && l.delay_us == 0 && l.reorder == 0) {
      if (opts.duplicates) {
        l.duplicate = opts.max_duplicate * 0.5;  // never emit a no-op rule
      } else if (opts.delays) {
        l.delay_us = 1 + opts.max_delay_us / 2;
      } else {
        continue;
      }
    }
    // Stagger rule windows inside the global bound.
    l.after_us = rng.next_u64(opts.window_us / 4 + 1);
    l.until_us = l.after_us + opts.window_us / 2 +
                 rng.next_u64(opts.window_us / 2 - opts.window_us / 4 + 1);
    l.until_us = std::min(l.until_us, opts.window_us);
    p.links.push_back(std::move(l));
  }
  if (!opts.crash_node.empty()) {
    NodeFault crash;
    crash.node = opts.crash_node;
    crash.crash_at_us =
        opts.crash_after_us + rng.next_u64(opts.crash_spread_us + 1);
    crash.restart_at_us = crash.crash_at_us + opts.restart_delay_us;
    p.nodes.push_back(std::move(crash));
  }
  return p;
}

bool fault_addr_match(const std::string& pattern, const Addr& addr) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    const std::string_view prefix(pattern.data(), pattern.size() - 1);
    return std::string_view(addr).substr(0, prefix.size()) == prefix;
  }
  return pattern == addr;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::arm(uint64_t now_us) {
  std::lock_guard<std::mutex> g(mu_);
  if (!armed_) {
    armed_ = true;
    origin_us_ = now_us;
  }
}

FaultDecision FaultInjector::on_message(const Addr& src, const Addr& dst,
                                        uint64_t now_us) {
  std::lock_guard<std::mutex> g(mu_);
  if (!armed_) {
    armed_ = true;
    origin_us_ = now_us;
  }
  const uint64_t t = now_us - origin_us_;
  FaultDecision d;
  ++decided_;
  // Partitions first: a severed link drops unconditionally and burns no RNG,
  // so adding a partition entry never perturbs the link rules' decision
  // stream for traffic outside the cut.
  for (const auto& p : plan_.partitions) {
    if (t < p.after_us || (p.until_us != 0 && t >= p.until_us)) continue;
    const bool a_to_b = match_any(p.a, src) && match_any(p.b, dst);
    const bool b_to_a = match_any(p.b, src) && match_any(p.a, dst);
    if (a_to_b || (p.symmetric && b_to_a)) {
      d.drop = true;
      ++dropped_;
      ++partitioned_;
      return d;
    }
  }
  for (const auto& l : plan_.links) {
    if (t < l.after_us || (l.until_us != 0 && t >= l.until_us)) continue;
    if (!fault_addr_match(l.src, src) || !fault_addr_match(l.dst, dst)) {
      continue;
    }
    // Burn the RNG in a fixed order per matched rule so the decision stream
    // depends only on (plan, message sequence), not on which faults fired.
    const bool drop = l.drop > 0 && rng_.next_bool(l.drop);
    const bool dup = l.duplicate > 0 && rng_.next_bool(l.duplicate);
    const bool reorder = l.reorder > 0 && rng_.next_bool(l.reorder);
    uint64_t delay = l.delay_us;
    if (l.jitter_us > 0 && (delay > 0 || reorder)) {
      delay += rng_.next_u64(l.jitter_us + 1);
    } else if (reorder) {
      // Reordering without explicit delay/jitter: hold the message back far
      // enough for back-to-back traffic on the link to overtake it.
      delay += 1 + rng_.next_u64(200);
    }
    d.drop |= drop;
    d.duplicate |= dup;
    d.delay_us = std::max(d.delay_us, delay);
  }
  if (d.drop) {
    d.duplicate = false;
    d.delay_us = 0;
    ++dropped_;
    return d;
  }
  if (d.duplicate) ++duplicated_;
  if (d.delay_us > 0) ++delayed_;
  return d;
}

uint64_t FaultInjector::decided() const {
  std::lock_guard<std::mutex> g(mu_);
  return decided_;
}
uint64_t FaultInjector::dropped() const {
  std::lock_guard<std::mutex> g(mu_);
  return dropped_;
}
uint64_t FaultInjector::duplicated() const {
  std::lock_guard<std::mutex> g(mu_);
  return duplicated_;
}
uint64_t FaultInjector::delayed() const {
  std::lock_guard<std::mutex> g(mu_);
  return delayed_;
}
uint64_t FaultInjector::partitioned() const {
  std::lock_guard<std::mutex> g(mu_);
  return partitioned_;
}

void schedule_node_faults(Runtime& rt, Fabric& fab, const FaultPlan& plan) {
  for (const auto& n : plan.nodes) {
    const Addr node = n.node;
    rt.set_timer(n.crash_at_us, [&fab, node] {
      LOG_INFO << "faultplan: crashing " << node;
      fab.kill(node);
    });
    if (n.restart_at_us != 0) {
      rt.set_timer(n.restart_at_us, [&fab, node] {
        LOG_INFO << "faultplan: restarting " << node;
        if (!fab.restart(node)) {
          LOG_WARN << "faultplan: restart of " << node << " failed";
        }
      });
    }
  }
}

}  // namespace bespokv
