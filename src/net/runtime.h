// Runtime / Service / Fabric: the asynchronous event-driven programming
// substrate every bespoKV component is written against (§III-B "controlet
// programming abstraction"). The same controlet, coordinator, DLM, shared-log
// and datalet code runs unchanged on three fabrics:
//
//   * SimFabric    — single-threaded discrete-event simulation with a virtual
//                    clock, per-node service-time queueing, link latency and
//                    failure injection. Used by the scale-out benchmarks
//                    (substitute for the paper's 48-node GCE cluster).
//   * ThreadFabric — one OS thread + mailbox per node, real time. Used by
//                    integration tests and the examples.
//   * TcpFabric    — epoll-based framed TCP on loopback, real sockets. Used
//                    to exercise the genuine networking path.
//
// Execution model: every node is single-threaded; all handlers, timers and
// RPC callbacks for a node run serialized on that node's runtime, so node
// logic needs no locks (matching the paper's event-driven controlets).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/obs/node_obs.h"
#include "src/proto/message.h"

namespace bespokv {

using Addr = std::string;

// RPC completion: Status is kOk iff a reply arrived (the reply itself may
// still carry an application-level error in msg.code).
using RpcCallback = std::function<void(Status, Message)>;

// Passed to Service::handle; must be invoked exactly once per request.
// Copyable so handlers can stash it while they fan out sub-requests.
using Replier = std::function<void(Message)>;

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual const Addr& self() const = 0;
  virtual uint64_t now_us() = 0;

  // Runs `fn` on this node's executor, after currently queued events.
  virtual void post(std::function<void()> fn) = 0;

  // One-shot timer. Returns a cancellation id (0 is never a valid id).
  virtual uint64_t set_timer(uint64_t delay_us, std::function<void()> fn) = 0;
  // Periodic timer firing every `period_us` until cancelled.
  virtual uint64_t set_periodic(uint64_t period_us, std::function<void()> fn) = 0;
  virtual void cancel_timer(uint64_t id) = 0;

  // Request/response to another node. The callback always fires exactly once,
  // with kTimeout/kUnavailable if the peer is dead, partitioned or silent.
  virtual void call(const Addr& dst, Message req, RpcCallback cb,
                    uint64_t timeout_us = 1'000'000) = 0;

  // Fire-and-forget send (no reply expected, silently dropped on failure).
  virtual void send(const Addr& dst, Message msg) = 0;

  // Deterministic per-node random source.
  virtual Rng& rng() = 0;

  // How long a request arriving *now* would wait before this node's executor
  // picks it up (its ingress/reactor queue), in microseconds. A real server
  // reads this off its accept/reactor queue depth; the DES computes it from
  // the node's busy time. Admission control (controlet/admission.h) folds it
  // into the predicted wait so load shedding sees queueing that happens
  // before handlers run. 0 = idle or unknown.
  virtual uint64_t queue_backlog_us() { return 0; }

  // The node's observability bundle (metrics registry + tracer), shared by
  // every component running on this node and by the fabric's own counters.
  // Created on first use; safe from any thread.
  obs::NodeObs& obs() {
    std::call_once(obs_once_, [this] {
      obs_ = std::make_unique<obs::NodeObs>(self());
    });
    return *obs_;
  }

 private:
  std::once_flag obs_once_;
  std::unique_ptr<obs::NodeObs> obs_;
};

class Service {
 public:
  virtual ~Service() = default;

  // Called once when the node starts; the Runtime outlives the Service.
  virtual void start(Runtime& rt) { rt_ = &rt; }
  virtual void stop() {}

  // Handles one incoming request. Must eventually invoke `reply` exactly once
  // (for kSend-style one-way messages the fabric supplies a no-op replier).
  virtual void handle(const Addr& from, Message req, Replier reply) = 0;

  // Load-shedding fast path. Capacity-modeling fabrics (the DES) consult
  // this when a request *arrives*, before it occupies a service slot:
  // returning false makes the fabric answer kOverloaded immediately — at the
  // cheap rejection cost, bypassing the work queue — with *retry_after_us
  // carried in the reply's seq. This is where real admission control lives
  // (the reactor thread rejecting before dispatch); the in-handler check in
  // ControletBase::admit covers fabrics that do not call it. `backlog_us` is
  // the node's current ingress-queue wait. Default: admit everything.
  virtual bool admit_ingress(const Message& /*req*/, uint64_t /*backlog_us*/,
                             uint64_t* /*retry_after_us*/) {
    return true;
  }

  // ---- Sharded execution (thread-per-core fabrics) ----
  // A service whose state partitions into independent single-writer shards
  // reports shards() > 1. Sharded fabrics (TcpFabric with reactors > 1, the
  // sim's per-core service model) then route each request to the shard
  // returned by shard_of() and may invoke handle_shard() concurrently for
  // *different* shards — never concurrently for the same shard, so per-shard
  // state still needs no locks. The default (one shard, everything through
  // handle() on the node's home reactor) preserves the paper's fully
  // serialized event-driven controlet model; controlets, coordinator, DLM
  // and shared log all keep it.
  virtual int shards() const { return 1; }
  virtual int shard_of(const Message&) const { return 0; }
  virtual void handle_shard(int /*shard*/, const Addr& from, Message req,
                            Replier reply) {
    handle(from, std::move(req), std::move(reply));
  }

 protected:
  Runtime* rt_ = nullptr;
};

// Convenience Service built from a lambda.
class LambdaService : public Service {
 public:
  using Fn = std::function<void(Runtime&, const Addr&, Message, Replier)>;
  explicit LambdaService(Fn fn) : fn_(std::move(fn)) {}
  void handle(const Addr& from, Message req, Replier reply) override {
    fn_(*rt_, from, std::move(req), std::move(reply));
  }

 private:
  Fn fn_;
};

class FaultInjector;  // src/net/fault.h

class Fabric {
 public:
  virtual ~Fabric() = default;

  // Registers a node. The fabric owns the service's lifecycle.
  virtual Runtime* add_node(const Addr& addr, std::shared_ptr<Service> svc) = 0;

  // Crash-stop the node: in-flight and future messages to it are lost.
  virtual void kill(const Addr& addr) = 0;
  virtual bool alive(const Addr& addr) const = 0;

  // Restarts a previously killed node in place: same address, same Service
  // object, fresh timers/mailbox/connections. The service's start() runs
  // again, so services must treat a second start() as a crash-recovery
  // (ControletBase re-syncs before serving). Returns false if the node is
  // unknown, still alive, or the fabric cannot bring it back.
  virtual bool restart(const Addr& addr) { return false; }

  // Cuts/restores bidirectional connectivity between two nodes.
  virtual void partition(const Addr& a, const Addr& b, bool cut) = 0;

  // Installs (or clears, with nullptr) a chaos fault injector consulted on
  // every message the fabric carries. See src/net/fault.h.
  void set_fault_injector(std::shared_ptr<FaultInjector> fi) {
    std::lock_guard<std::mutex> g(fault_mu_);
    fault_injector_ = std::move(fi);
  }
  std::shared_ptr<FaultInjector> fault_injector() const {
    std::lock_guard<std::mutex> g(fault_mu_);
    return fault_injector_;
  }

 private:
  mutable std::mutex fault_mu_;
  std::shared_ptr<FaultInjector> fault_injector_;
};

}  // namespace bespokv
