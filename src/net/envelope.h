// RPC envelope framing shared by the TCP fabric and the protocol tests.
// Frame on the wire: 4-byte little-endian payload length, then the payload:
//   varint rpc_id | u8 kind | bytes from_addr | encoded Message (codec.h)
//   [optional tail fields]
// Tail fields (each optional, in tag order):
//   trace context (tag kTraceTailTag): u8 tag | varint trace_id |
//     varint span_id | u8 hop
//   idempotency token (tag kTokenTailTag): u8 tag | varint token
// Envelopes without metadata carry no tail and are byte-identical to the
// pre-tracing format; decoders skip tails with unknown tags, so
// mixed-version nodes interoperate.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/byte_buffer.h"
#include "src/common/status.h"
#include "src/net/runtime.h"
#include "src/proto/message.h"

namespace bespokv {

enum class EnvelopeKind : uint8_t { kRequest = 0, kResponse = 1, kOneWay = 2 };

// Tags of the tail fields appended after the encoded message.
inline constexpr uint8_t kTraceTailTag = 0x01;  // trace context
inline constexpr uint8_t kTokenTailTag = 0x02;  // idempotency token

struct Envelope {
  uint64_t rpc_id = 0;
  EnvelopeKind kind = EnvelopeKind::kRequest;
  Addr from;
  Message msg;
};

// Appends a complete frame (length prefix included) to `out`. Single-pass:
// the payload is serialized directly into `out` after a reserved 4-byte
// length slot, which is backpatched afterwards — no intermediate payload or
// frame string is built. The ByteBuffer overload is the fabric hot path and
// encodes straight into a connection's write buffer.
void encode_envelope(const Envelope& env, std::string* out);
void encode_envelope(const Envelope& env, ByteBuffer* out);

// Attempts to decode one frame from the head of `buf`. Returns:
//   kOk + consumed>0  — a frame was decoded into *env
//   kOk + consumed==0 — need more bytes
//   error             — stream is corrupt; the connection must be dropped
Status decode_envelope(std::string_view buf, Envelope* env, size_t* consumed);

// Parses the optional tail bytes after the encoded message. Unknown or
// malformed tails leave *trace invalid / *token zero (never an error).
// Exposed for tests.
void decode_envelope_tail(std::string_view tail, TraceContext* trace,
                          uint64_t* token);

}  // namespace bespokv
