// BufferPool: per-reactor slab recycler feeding the ByteBuffer fast path.
//
// Every connection needs a read buffer and a ring of write chunks; churning
// them through malloc on each accept/close (or growing one giant buffer per
// connection, as the pre-reactor fabric's per-conn spare ring did) wastes
// the warm allocations of closed connections. The pool keeps up to
// `max_buffers` drained ByteBuffers per reactor and hands them to whichever
// connection needs one next, so steady-state accept/close traffic and write
// bursts reuse warm slabs instead of allocating.
//
// Thread-compatible: each reactor owns exactly one pool and touches it only
// from its own loop thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/byte_buffer.h"

namespace bespokv {

class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;      // acquire served from the pool
    uint64_t misses = 0;    // acquire had to allocate fresh
    uint64_t returned = 0;  // release kept the buffer
    uint64_t dropped = 0;   // release freed it (pool full / slab oversized)
  };

  explicit BufferPool(size_t max_buffers = 64,
                      size_t slab_capacity = 64 * 1024)
      : max_buffers_(max_buffers), slab_capacity_(slab_capacity) {}

  ByteBuffer acquire() {
    if (!free_.empty()) {
      ByteBuffer b = std::move(free_.back());
      free_.pop_back();
      ++stats_.hits;
      return b;
    }
    ++stats_.misses;
    return ByteBuffer(slab_capacity_);
  }

  // Takes the buffer back (cleared). Oversized slabs — e.g. a buffer grown
  // by one multi-MB payload — are freed rather than hoarded, so the pool's
  // footprint stays bounded by max_buffers * 4 * slab_capacity.
  void release(ByteBuffer b) {
    b.clear();
    if (free_.size() >= max_buffers_ || b.capacity() > 4 * slab_capacity_) {
      ++stats_.dropped;
      return;  // b frees on scope exit
    }
    ++stats_.returned;
    free_.push_back(std::move(b));
  }

  size_t available() const { return free_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  size_t max_buffers_;
  size_t slab_capacity_;
  std::vector<ByteBuffer> free_;
  Stats stats_;
};

}  // namespace bespokv
