// SimFabric: deterministic discrete-event network + node model.
//
// This is the substitute for the paper's multi-node GCE/testbed deployments
// (see DESIGN.md §2). Nodes are single-threaded servers with a queueing
// model: each processed message occupies the node for
//     recv_overhead + base_service + per_kb_service * payload_kb
// microseconds, and each sent message costs send_overhead. Links add a fixed
// one-way latency. Throughput saturates per node at 1/service_time and the
// protocols' message patterns (chain hops, lock round trips, log appends)
// determine everything else — which is exactly what the paper's scale-out
// curves measure.
//
// The transport overheads implement the §E socket-vs-DPDK cost models: the
// kernel socket path pays a large per-message overhead, the kernel-bypass
// fast path a tiny one.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/net/runtime.h"
#include "src/sim/event_queue.h"

namespace bespokv {

// Per-message transport cost model (§E). Applied on both sides of each hop.
struct TransportModel {
  uint64_t per_msg_us = 4;    // fixed per-message cost (syscall, interrupts)
  double per_kb_us = 0.8;     // copy cost per KiB
  uint64_t wire_latency_us = 0;  // extra in-flight latency added by the stack

  static TransportModel socket_model();    // kernel TCP sockets
  static TransportModel fastpath_model();  // DPDK-style kernel bypass
};

struct SimNodeOpts {
  // Service cost to process one message, before transport overheads.
  uint64_t base_service_us = 20;
  double per_kb_service_us = 4.0;
  // Range queries traverse and serialize one entry per result: charged per
  // requested item (kScan limit), on top of the base cost.
  uint64_t per_scan_item_us = 10;
  // Load generators: no capacity limit, no service cost.
  bool is_client = false;
  // Optional override: full control over per-message processing cost.
  std::function<uint64_t(const Message&)> service_cost_fn;
  // Requests shed by Service::admit_ingress cost this much instead of the
  // full service cost (a parse + one cheap reply, no execution) and bypass
  // the work queue, so admission control can reject at a much higher rate
  // than the node can serve — the property real load shedders rely on.
  uint64_t shed_service_us = 5;
  // Per-core service model, mirroring TcpFabric's reactor count: the node
  // becomes `cores` independent single-server queues. Messages for a sharded
  // service (Service::shards() > 1) occupy the core owning their shard
  // (shard % cores — the same placement the TCP runtime uses for reactors);
  // everything else serializes on core 0, exactly like the home reactor of a
  // non-sharded TCP node. Throughput then saturates at cores/service_time
  // for shardable load and 1/service_time otherwise.
  int cores = 1;
};

struct SimFabricOpts {
  uint64_t link_latency_us = 120;  // one-way propagation delay
  TransportModel transport = TransportModel::socket_model();
  uint64_t seed = 42;
};

class SimFabric : public Fabric {
 public:
  explicit SimFabric(SimFabricOpts opts = {});
  ~SimFabric() override;

  Runtime* add_node(const Addr& addr, std::shared_ptr<Service> svc) override {
    return add_node(addr, std::move(svc), SimNodeOpts{});
  }
  Runtime* add_node(const Addr& addr, std::shared_ptr<Service> svc,
                    SimNodeOpts node_opts);

  void kill(const Addr& addr) override;
  bool alive(const Addr& addr) const override;
  bool restart(const Addr& addr) override;
  void partition(const Addr& a, const Addr& b, bool cut) override;

  // Drives virtual time. run_for is relative to the current virtual clock.
  uint64_t now_us() const { return queue_.now_us(); }
  void run_until(uint64_t t_us) { queue_.run_until(t_us); }
  void run_for(uint64_t d_us) { queue_.run_until(queue_.now_us() + d_us); }
  void run_all() { queue_.run_all(); }
  bool idle() const { return queue_.empty(); }

  // Schedules work on a node from outside any handler (bench drivers).
  void post_to(const Addr& addr, std::function<void()> fn);

  // Point-in-time utilization of a node in [0,1] over the last window.
  sim::EventQueue& event_queue() { return queue_; }

  // Total messages delivered (for protocol-cost assertions in tests).
  uint64_t messages_delivered() const { return delivered_; }

 private:
  struct Node;
  class SimRuntime;
  struct PendingRpc;

  Node* find(const Addr& addr);
  const Node* find(const Addr& addr) const;
  bool severed(const Addr& a, const Addr& b) const;
  // Emits a "fabric.queue" span when a traced message waits for capacity.
  void record_queue_wait(Node& dst, const Message& m, uint64_t arrival_us,
                         uint64_t start_us, int core);
  uint64_t proc_cost(const Node& n, const Message& m) const;
  uint64_t msg_bytes(const Message& m) const;
  // Which of the node's cores serves this message (see SimNodeOpts::cores).
  int core_of(const Node& n, const Message& m) const;
  // Runs the service handler, routing through handle_shard for sharded
  // services (mirrors the TCP reactors' shard dispatch).
  static void dispatch_to_service(Node& n, const Addr& from, Message msg,
                                  Replier reply);

  // Sender-side bookkeeping + schedules delivery; returns false if the
  // destination is unreachable (caller decides whether a timeout handles it).
  // `src_core` is the sender core charged the transport cost; pass
  // charge_sender=false when the send cost is already accounted for
  // (kOverloaded rejections, priced entirely by shed_service_us at ingress).
  void transmit(Node& src, int src_core, const Addr& dst_addr,
                std::function<void(Node&)> deliver, bool charge_sender = true);

  SimFabricOpts opts_;
  sim::EventQueue queue_;
  std::map<Addr, std::unique_ptr<Node>> nodes_;
  std::set<std::pair<Addr, Addr>> cuts_;
  std::map<uint64_t, std::unique_ptr<PendingRpc>> pending_;
  uint64_t next_rpc_id_ = 1;
  uint64_t delivered_ = 0;
};

}  // namespace bespokv
