#include "src/net/thread_fabric.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/net/fault.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {
uint64_t real_now_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

class ThreadFabric::ThreadRuntime : public Runtime {
 public:
  ThreadRuntime(ThreadFabric* fab, Node* node, Addr addr)
      : fab_(fab), node_(node), addr_(std::move(addr)), rng_(fnv1a64(addr_)) {}

  const Addr& self() const override { return addr_; }
  uint64_t now_us() override { return real_now_us(); }
  void post(std::function<void()> fn) override;
  uint64_t set_timer(uint64_t delay_us, std::function<void()> fn) override;
  uint64_t set_periodic(uint64_t period_us, std::function<void()> fn) override;
  void cancel_timer(uint64_t id) override;
  void call(const Addr& dst, Message req, RpcCallback cb, uint64_t timeout_us) override;
  void send(const Addr& dst, Message msg) override;
  Rng& rng() override { return rng_; }

 private:
  friend class ThreadFabric;
  friend struct ThreadFabric::Node;
  ThreadFabric* fab_;
  Node* node_;
  Addr addr_;
  Rng rng_;
};

struct ThreadFabric::Node {
  Addr addr;
  std::shared_ptr<Service> svc;
  std::unique_ptr<ThreadRuntime> rt;
  std::thread thread;

  // Mailbox + timers, guarded by mu. Everything executes on `thread`.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> tasks;
  struct Timer {
    uint64_t at_us;
    uint64_t id;
    uint64_t period_us;  // 0 = one-shot
    std::function<void()> fn;
  };
  std::vector<Timer> timers;  // small; linear scan for the earliest
  uint64_t next_timer_id = 1;
  bool stopping = false;
  std::atomic<bool> alive{true};

  // RPCs issued by this node, touched only on its own thread.
  std::map<uint64_t, RpcCallback> pending;

  void enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> g(mu);
      if (stopping) return;
      tasks.push_back(std::move(task));
    }
    cv.notify_one();
  }

  void loop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu);
        while (true) {
          if (stopping) return;
          const uint64_t now = real_now_us();
          // Fire due timers first (earliest deadline order).
          auto due = timers.end();
          uint64_t earliest = UINT64_MAX;
          for (auto it = timers.begin(); it != timers.end(); ++it) {
            if (it->at_us < earliest) {
              earliest = it->at_us;
              due = it;
            }
          }
          if (due != timers.end() && earliest <= now) {
            Timer t = *due;
            if (t.period_us > 0) {
              due->at_us = now + t.period_us;
            } else {
              timers.erase(due);
            }
            lk.unlock();
            t.fn();
            lk.lock();
            continue;
          }
          if (!tasks.empty()) {
            task = std::move(tasks.front());
            tasks.pop_front();
            break;
          }
          if (earliest != UINT64_MAX) {
            cv.wait_for(lk, std::chrono::microseconds(earliest - now));
          } else {
            cv.wait(lk);
          }
        }
      }
      task();
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> g(mu);
      if (stopping) return;
      stopping = true;
    }
    alive.store(false);
    cv.notify_all();
  }
};

void ThreadFabric::ThreadRuntime::post(std::function<void()> fn) {
  node_->enqueue(std::move(fn));
}

uint64_t ThreadFabric::ThreadRuntime::set_timer(uint64_t delay_us,
                                                std::function<void()> fn) {
  std::lock_guard<std::mutex> g(node_->mu);
  const uint64_t id = node_->next_timer_id++;
  node_->timers.push_back(
      Node::Timer{real_now_us() + delay_us, id, 0, std::move(fn)});
  node_->cv.notify_one();
  return id;
}

uint64_t ThreadFabric::ThreadRuntime::set_periodic(uint64_t period_us,
                                                   std::function<void()> fn) {
  std::lock_guard<std::mutex> g(node_->mu);
  const uint64_t id = node_->next_timer_id++;
  node_->timers.push_back(
      Node::Timer{real_now_us() + period_us, id, period_us, std::move(fn)});
  node_->cv.notify_one();
  return id;
}

void ThreadFabric::ThreadRuntime::cancel_timer(uint64_t id) {
  std::lock_guard<std::mutex> g(node_->mu);
  auto& ts = node_->timers;
  ts.erase(std::remove_if(ts.begin(), ts.end(),
                          [id](const Node::Timer& t) { return t.id == id; }),
           ts.end());
}

void ThreadFabric::ThreadRuntime::call(const Addr& dst, Message req,
                                       RpcCallback cb, uint64_t timeout_us) {
  obs::stamp_outgoing(*this, req);
  const uint64_t rpc_id = fab_->next_rpc_id_.fetch_add(1);
  // Register the pending callback on our own thread, then ship the request.
  auto fire_timeout = [this, rpc_id] {
    auto it = node_->pending.find(rpc_id);
    if (it == node_->pending.end()) return;
    RpcCallback cb = std::move(it->second);
    node_->pending.erase(it);
    cb(Status::Timeout("rpc timeout"), Message{});
  };
  node_->enqueue([this, rpc_id, cb = std::move(cb), timeout_us, fire_timeout] {
    node_->pending[rpc_id] = std::move(cb);
    set_timer(timeout_us, fire_timeout);
  });

  const Addr from = addr_;
  fab_->deliver(from, dst, {});  // reachability side effects only (none)
  auto dst_node = fab_->find(dst);
  if (!dst_node || !dst_node->alive.load() || fab_->severed(from, dst)) {
    return;  // the timeout will complete the RPC
  }
  ThreadFabric* fab = fab_;
  fab_->inject_deliver(dst_node, from, [fab, dst_node_raw = dst_node.get(),
                                        from, rpc_id,
                                        req = std::move(req)]() mutable {
    Replier reply = [fab, from, rpc_id,
                     self = dst_node_raw->addr](Message resp) {
      auto requester = fab->find(from);
      if (!requester || !requester->alive.load() || fab->severed(self, from)) {
        return;
      }
      fab->inject_deliver(requester, self,
                          [requester_raw = requester.get(), rpc_id,
                           resp = std::move(resp)]() mutable {
        auto it = requester_raw->pending.find(rpc_id);
        if (it == requester_raw->pending.end()) return;  // timed out
        RpcCallback cb = std::move(it->second);
        requester_raw->pending.erase(it);
        cb(Status::Ok(), std::move(resp));
      });
    };
    Runtime& drt = *dst_node_raw->rt;
    if (obs::handle_admin(drt, req, reply)) return;
    obs::DispatchSpan span(drt, req);
    reply = span.wrap(std::move(reply));
    dst_node_raw->svc->handle(from, std::move(req), std::move(reply));
  });
}

void ThreadFabric::ThreadRuntime::send(const Addr& dst, Message msg) {
  obs::stamp_outgoing(*this, msg);
  const Addr from = addr_;
  auto dst_node = fab_->find(dst);
  if (!dst_node || !dst_node->alive.load() || fab_->severed(from, dst)) return;
  fab_->inject_deliver(dst_node, from, [dst_node_raw = dst_node.get(), from,
                                        msg = std::move(msg)]() mutable {
    Replier reply = [](Message) {};
    Runtime& drt = *dst_node_raw->rt;
    if (obs::handle_admin(drt, msg, reply)) return;
    obs::DispatchSpan span(drt, msg);
    reply = span.wrap(std::move(reply));
    dst_node_raw->svc->handle(from, std::move(msg), std::move(reply));
  });
}

ThreadFabric::ThreadFabric() {
  // Hidden node used to issue call_sync RPCs from external threads.
  external_ = add_node("__external__", std::make_shared<LambdaService>(
      [](Runtime&, const Addr&, Message, Replier reply) {
        reply(Message::reply(Code::kInvalid));
      }));
}

ThreadFabric::~ThreadFabric() { shutdown(); }

Runtime* ThreadFabric::add_node(const Addr& addr, std::shared_ptr<Service> svc) {
  auto node = std::make_shared<Node>();
  node->addr = addr;
  node->svc = std::move(svc);
  node->rt = std::make_unique<ThreadRuntime>(this, node.get(), addr);
  {
    std::lock_guard<std::mutex> g(mu_);
    nodes_[addr] = node;
  }
  node->svc->start(*node->rt);
  node->thread = std::thread([node] { node->loop(); });
  return node->rt.get();
}

std::shared_ptr<ThreadFabric::Node> ThreadFabric::find(const Addr& addr) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second;
}

bool ThreadFabric::severed(const Addr& a, const Addr& b) const {
  std::lock_guard<std::mutex> g(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return cuts_.count(key) > 0;
}

void ThreadFabric::deliver(const Addr&, const Addr&, std::function<void()>) {}

void ThreadFabric::inject_deliver(const std::shared_ptr<Node>& dst,
                                  const Addr& src, std::function<void()> task) {
  auto fi = fault_injector();
  if (!fi) {
    dst->enqueue(std::move(task));
    return;
  }
  const FaultDecision d = fi->on_message(src, dst->addr, real_now_us());
  if (d.drop) return;  // lost on the wire; RPC timeouts handle it
  const int copies = d.duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    if (d.delay_us > 0) {
      // set_timer only takes the destination node's lock: safe to call from
      // the sender's thread, and the task still runs on dst's thread.
      dst->rt->set_timer(d.delay_us, task);
    } else {
      dst->enqueue(task);
    }
  }
}

void ThreadFabric::kill(const Addr& addr) {
  auto node = find(addr);
  if (!node) return;
  node->svc->stop();
  node->stop();
  if (node->thread.joinable()) node->thread.join();
}

bool ThreadFabric::alive(const Addr& addr) const {
  auto node = find(addr);
  return node && node->alive.load();
}

bool ThreadFabric::restart(const Addr& addr) {
  auto node = find(addr);
  if (!node || node->alive.load()) return false;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shut_down_) return false;
  }
  if (node->thread.joinable()) node->thread.join();
  // The thread is gone: mailbox, timers and pending RPCs from the previous
  // incarnation are discarded (crash-stop loses in-flight state).
  {
    std::lock_guard<std::mutex> g(node->mu);
    node->stopping = false;
    node->tasks.clear();
    node->timers.clear();
  }
  node->pending.clear();
  node->alive.store(true);
  node->svc->start(*node->rt);
  node->thread = std::thread([node] { node->loop(); });
  return true;
}

void ThreadFabric::partition(const Addr& a, const Addr& b, bool cut) {
  std::lock_guard<std::mutex> g(mu_);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (cut) {
    cuts_.insert(key);
  } else {
    cuts_.erase(key);
  }
}

void ThreadFabric::shutdown() {
  std::vector<std::shared_ptr<Node>> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& [addr, node] : nodes_) all.push_back(node);
  }
  for (auto& node : all) {
    if (node->alive.load()) node->svc->stop();
    node->stop();
  }
  for (auto& node : all) {
    if (node->thread.joinable()) node->thread.join();
  }
}

Result<Message> ThreadFabric::call_sync(const Addr& dst, Message req,
                                        uint64_t timeout_us) {
  auto prom = std::make_shared<std::promise<Result<Message>>>();
  auto fut = prom->get_future();
  external_->post([this, dst, req = std::move(req), prom, timeout_us]() mutable {
    external_->call(
        dst, std::move(req),
        [prom](Status s, Message m) {
          if (s.ok()) {
            prom->set_value(std::move(m));
          } else {
            prom->set_value(s);
          }
        },
        timeout_us);
  });
  return fut.get();
}

}  // namespace bespokv
