// ThreadFabric: every node is an OS thread with a mailbox, timers and a
// real-time clock. Used by integration tests and the runnable examples.
// Semantics match SimFabric (single-threaded nodes, exactly-once RPC
// callbacks, crash-stop kill, symmetric partitions) under real time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "src/net/runtime.h"

namespace bespokv {

class ThreadFabric : public Fabric {
 public:
  ThreadFabric();
  ~ThreadFabric() override;

  Runtime* add_node(const Addr& addr, std::shared_ptr<Service> svc) override;

  void kill(const Addr& addr) override;
  bool alive(const Addr& addr) const override;
  bool restart(const Addr& addr) override;
  void partition(const Addr& a, const Addr& b, bool cut) override;

  // Stops all nodes and joins their threads. Called by the destructor.
  void shutdown();

  // Synchronous RPC from outside the fabric (tests, example mains). Issued
  // through a hidden client node; safe to call from any external thread.
  Result<Message> call_sync(const Addr& dst, Message req,
                            uint64_t timeout_us = 2'000'000);

 private:
  struct Node;
  class ThreadRuntime;

  std::shared_ptr<Node> find(const Addr& addr) const;
  bool severed(const Addr& a, const Addr& b) const;
  void deliver(const Addr& from, const Addr& to, std::function<void()> task);
  // Runs `task` on dst's thread, applying any installed fault injector's
  // verdict for the (src → dst) link: drop, duplicate, or delayed delivery.
  void inject_deliver(const std::shared_ptr<Node>& dst, const Addr& src,
                      std::function<void()> task);

  mutable std::mutex mu_;
  std::map<Addr, std::shared_ptr<Node>> nodes_;
  std::set<std::pair<Addr, Addr>> cuts_;
  std::atomic<uint64_t> next_rpc_id_{1};
  bool shut_down_ = false;
  Runtime* external_ = nullptr;  // hidden client node for call_sync
};

}  // namespace bespokv
