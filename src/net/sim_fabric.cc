#include "src/net/sim_fabric.h"

#include <algorithm>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/net/fault.h"
#include "src/obs/admin.h"

namespace bespokv {

TransportModel TransportModel::socket_model() {
  // Kernel TCP: syscall + softirq + copies. Calibrated so that removing it
  // (fastpath_model) yields the ~65% latency / ~3x throughput gains of §E.
  return TransportModel{.per_msg_us = 14, .per_kb_us = 1.5, .wire_latency_us = 20};
}

TransportModel TransportModel::fastpath_model() {
  // DPDK-style polling userspace stack: no syscalls, zero-copy DMA.
  return TransportModel{.per_msg_us = 1, .per_kb_us = 0.2, .wire_latency_us = 2};
}

struct SimFabric::PendingRpc {
  Addr requester;
  RpcCallback cb;
  uint64_t timeout_event = 0;
};

class SimFabric::SimRuntime : public Runtime {
 public:
  SimRuntime(SimFabric* fab, Node* node, Addr addr, uint64_t seed)
      : fab_(fab), node_(node), addr_(std::move(addr)), rng_(seed) {}

  const Addr& self() const override { return addr_; }
  uint64_t now_us() override { return fab_->queue_.now_us(); }
  void post(std::function<void()> fn) override;
  uint64_t set_timer(uint64_t delay_us, std::function<void()> fn) override;
  uint64_t set_periodic(uint64_t period_us, std::function<void()> fn) override;
  void cancel_timer(uint64_t id) override;
  void call(const Addr& dst, Message req, RpcCallback cb, uint64_t timeout_us) override;
  void send(const Addr& dst, Message msg) override;
  Rng& rng() override { return rng_; }
  uint64_t queue_backlog_us() override;

 private:
  friend class SimFabric;

  // Periodic timers get ids in a disjoint space (high bit set) so
  // cancel_timer can tell them apart from one-shot event ids.
  static constexpr uint64_t kPeriodicBit = 1ULL << 63;

  SimFabric* fab_;
  Node* node_;
  Addr addr_;
  Rng rng_;
  std::set<uint64_t> live_timers_;            // pending one-shot event ids
  std::map<uint64_t, uint64_t> periodics_;    // public id -> current event id
  uint64_t periodic_seq_ = 0;
};

struct SimFabric::Node {
  Addr addr;
  std::shared_ptr<Service> svc;
  std::unique_ptr<SimRuntime> rt;
  SimNodeOpts opts;
  bool alive = true;
  // One single-server queue per core (see SimNodeOpts::cores).
  std::vector<uint64_t> busy;
};

uint64_t SimFabric::SimRuntime::queue_backlog_us() {
  // The explicit capacity model makes the ingress queue directly readable:
  // work already accepted by a core finishes at busy[core]; anything arriving
  // now waits at least that long. Report the worst core.
  const uint64_t now = fab_->queue_.now_us();
  uint64_t backlog = 0;
  for (uint64_t b : node_->busy) {
    if (b > now) backlog = std::max(backlog, b - now);
  }
  return backlog;
}

SimFabric::SimFabric(SimFabricOpts opts) : opts_(opts) {}

SimFabric::~SimFabric() {
  for (auto& [addr, node] : nodes_) {
    if (node->alive) node->svc->stop();
  }
}

Runtime* SimFabric::add_node(const Addr& addr, std::shared_ptr<Service> svc,
                             SimNodeOpts node_opts) {
  auto node = std::make_unique<Node>();
  node->addr = addr;
  node->svc = std::move(svc);
  node->opts = node_opts;
  node->busy.assign(static_cast<size_t>(std::max(1, node_opts.cores)), 0);
  node->rt = std::make_unique<SimRuntime>(this, node.get(), addr,
                                          opts_.seed ^ fnv1a64(addr));
  Node* raw = node.get();
  nodes_[addr] = std::move(node);
  raw->svc->start(*raw->rt);
  return raw->rt.get();
}

SimFabric::Node* SimFabric::find(const Addr& addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const SimFabric::Node* SimFabric::find(const Addr& addr) const {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void SimFabric::kill(const Addr& addr) {
  if (Node* n = find(addr)) {
    n->alive = false;
    n->svc->stop();
  }
}

bool SimFabric::alive(const Addr& addr) const {
  const Node* n = find(addr);
  return n != nullptr && n->alive;
}

bool SimFabric::restart(const Addr& addr) {
  Node* n = find(addr);
  if (n == nullptr || n->alive) return false;
  n->alive = true;
  std::fill(n->busy.begin(), n->busy.end(), queue_.now_us());
  n->svc->start(*n->rt);
  return true;
}

void SimFabric::partition(const Addr& a, const Addr& b, bool cut) {
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (cut) {
    cuts_.insert(key);
  } else {
    cuts_.erase(key);
  }
}

bool SimFabric::severed(const Addr& a, const Addr& b) const {
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return cuts_.count(key) > 0;
}

uint64_t SimFabric::msg_bytes(const Message& m) const {
  uint64_t n = m.key.size() + m.value.size() + m.table.size() + 32;
  for (const auto& kv : m.kvs) n += kv.key.size() + kv.value.size() + 8;
  for (const auto& s : m.strs) n += s.size();
  return n;
}

uint64_t SimFabric::proc_cost(const Node& n, const Message& m) const {
  if (n.opts.is_client) return 0;
  if (n.opts.service_cost_fn) return n.opts.service_cost_fn(m);
  const double kb = static_cast<double>(msg_bytes(m)) / 1024.0;
  uint64_t cost = n.opts.base_service_us +
                  static_cast<uint64_t>(n.opts.per_kb_service_us * kb);
  if (m.op == Op::kScan) {
    cost += n.opts.per_scan_item_us * std::max<uint64_t>(m.limit, 1);
  }
  return cost;
}

int SimFabric::core_of(const Node& n, const Message& m) const {
  const int cores = static_cast<int>(n.busy.size());
  if (cores <= 1) return 0;
  // Sharded services spread over the cores with the same shard -> core
  // placement the TCP runtime uses for reactors; everything else serializes
  // on core 0 (the "home reactor").
  const int shards = n.svc->shards();
  if (shards <= 1) return 0;
  return n.svc->shard_of(m) % cores;
}

void SimFabric::dispatch_to_service(Node& n, const Addr& from, Message msg,
                                    Replier reply) {
  if (n.svc->shards() > 1) {
    n.svc->handle_shard(n.svc->shard_of(msg), from, std::move(msg),
                        std::move(reply));
  } else {
    n.svc->handle(from, std::move(msg), std::move(reply));
  }
}

void SimFabric::transmit(Node& src, int src_core, const Addr& dst_addr,
                         std::function<void(Node&)> deliver,
                         bool charge_sender) {
  // Sender-side transport cost consumes sender capacity on the sending core.
  if (charge_sender && !src.opts.is_client) {
    const uint64_t t = queue_.now_us();
    uint64_t& busy = src.busy[static_cast<size_t>(src_core) % src.busy.size()];
    busy = std::max(busy, t) + opts_.transport.per_msg_us;
  }
  if (severed(src.addr, dst_addr)) return;
  uint64_t fault_delay = 0;
  int copies = 1;
  if (auto fi = fault_injector()) {
    const FaultDecision d = fi->on_message(src.addr, dst_addr, queue_.now_us());
    if (d.drop) return;  // lost on the wire; RPC timeouts handle it
    if (d.duplicate) copies = 2;
    fault_delay = d.delay_us;
  }
  const uint64_t arrive = queue_.now_us() + opts_.link_latency_us +
                          opts_.transport.wire_latency_us + fault_delay;
  for (int c = 0; c < copies; ++c) {
    queue_.schedule_at(arrive, [this, dst_addr, deliver] {
      Node* dst = find(dst_addr);
      if (dst == nullptr || !dst->alive) return;  // dropped on the floor
      ++delivered_;
      deliver(*dst);
    });
  }
}

void SimFabric::SimRuntime::post(std::function<void()> fn) {
  fab_->queue_.schedule_after(0, [this, fn = std::move(fn)] {
    if (node_->alive) fn();
  });
}

uint64_t SimFabric::SimRuntime::set_timer(uint64_t delay_us, std::function<void()> fn) {
  auto idp = std::make_shared<uint64_t>(0);
  *idp = fab_->queue_.schedule_after(delay_us, [this, idp, fn = std::move(fn)] {
    // Self-deregister before running so a cancel() after firing is benign.
    live_timers_.erase(*idp);
    if (node_->alive) fn();
  });
  live_timers_.insert(*idp);
  return *idp;
}

uint64_t SimFabric::SimRuntime::set_periodic(uint64_t period_us, std::function<void()> fn) {
  const uint64_t pid = kPeriodicBit | ++periodic_seq_;
  auto tick = std::make_shared<std::function<void()>>();
  auto fnp = std::make_shared<std::function<void()>>(std::move(fn));
  *tick = [this, period_us, pid, tick, fnp] {
    if (!node_->alive || periodics_.count(pid) == 0) return;
    (*fnp)();
    auto it = periodics_.find(pid);  // fn may have cancelled its own timer
    if (it == periodics_.end()) return;
    it->second = fab_->queue_.schedule_after(period_us, *tick);
  };
  periodics_[pid] = fab_->queue_.schedule_after(period_us, *tick);
  return pid;
}

void SimFabric::SimRuntime::cancel_timer(uint64_t id) {
  if (id & kPeriodicBit) {
    auto it = periodics_.find(id);
    if (it != periodics_.end()) {
      fab_->queue_.cancel(it->second);
      periodics_.erase(it);
    }
    return;
  }
  if (live_timers_.erase(id) > 0) fab_->queue_.cancel(id);
}

void SimFabric::SimRuntime::call(const Addr& dst, Message req, RpcCallback cb,
                                 uint64_t timeout_us) {
  obs::stamp_outgoing(*this, req);
  const uint64_t rpc_id = fab_->next_rpc_id_++;
  auto pending = std::make_unique<PendingRpc>();
  pending->requester = addr_;
  pending->cb = std::move(cb);
  pending->timeout_event = fab_->queue_.schedule_after(timeout_us, [this, rpc_id] {
    auto it = fab_->pending_.find(rpc_id);
    if (it == fab_->pending_.end()) return;
    RpcCallback cb = std::move(it->second->cb);
    fab_->pending_.erase(it);
    if (node_->alive) cb(Status::Timeout("rpc timeout"), Message{});
  });
  fab_->pending_[rpc_id] = std::move(pending);

  fab_->transmit(*node_, fab_->core_of(*node_, req), dst,
                 [fab = fab_, rpc_id, from = addr_,
                  req = std::move(req)](Node& dst_node) mutable {
    // Unconstrained (client-model) nodes process immediately with no
    // capacity serialization; servers queue behind the busy time of the
    // core that owns the message's shard.
    const uint64_t t = fab->queue_.now_us();
    uint64_t done = t;
    bool shed = false;
    uint64_t shed_hint = 0;
    const int core = fab->core_of(dst_node, req);
    if (!dst_node.opts.is_client) {
      uint64_t& busy = dst_node.busy[static_cast<size_t>(core)];
      const uint64_t backlog = busy > t ? busy - t : 0;
      if (!dst_node.svc->admit_ingress(req, backlog, &shed_hint)) {
        // Admission shed at the reactor: the request never enters the worker
        // queue and the rejection does not consume worker capacity — real
        // reactors reject orders of magnitude faster than workers serve, so
        // a shed storm must not be able to saturate the serve path. The
        // rejection still takes shed_service_us of wall clock to answer.
        shed = true;
        done = t + fab->opts_.transport.per_msg_us +
               dst_node.opts.shed_service_us;
      } else {
        const uint64_t start = std::max(t, busy);
        fab->record_queue_wait(dst_node, req, t, start, core);
        done = start + fab->opts_.transport.per_msg_us +
               fab->proc_cost(dst_node, req);
        busy = done;
      }
    }
    fab->queue_.schedule_at(done, [fab, rpc_id, from, core, shed, shed_hint,
                                   req = std::move(req),
                                   dst_addr = dst_node.addr]() mutable {
      Node* dn = fab->find(dst_addr);
      if (dn == nullptr || !dn->alive) return;
      // Build the replier: routes the response back to the requester and
      // completes the pending RPC. The reply's transport cost lands on the
      // core that served the request.
      Replier reply = [fab, rpc_id, dst_addr, core](Message resp) {
        Node* responder = fab->find(dst_addr);
        if (responder == nullptr || !responder->alive) return;
        auto it = fab->pending_.find(rpc_id);
        if (it == fab->pending_.end()) return;  // already timed out
        const Addr requester = it->second->requester;
        // kOverloaded rejections were already priced (shed_service_us) at
        // ingress; charging the normal reply-send cost on top would let a
        // shed storm saturate the responder all over again.
        const bool charge_sender = resp.code != Code::kOverloaded;
        fab->transmit(*responder, core, requester,
                      [fab, rpc_id, resp = std::move(resp)](Node& rq) mutable {
          auto pit = fab->pending_.find(rpc_id);
          if (pit == fab->pending_.end()) return;
          RpcCallback cb = std::move(pit->second->cb);
          fab->queue_.cancel(pit->second->timeout_event);
          fab->pending_.erase(pit);
          // Receiving the reply consumes requester capacity too.
          const uint64_t t2 = fab->queue_.now_us();
          if (!rq.opts.is_client) {
            uint64_t& busy = rq.busy[static_cast<size_t>(
                fab->core_of(rq, resp))];
            busy = std::max(busy, t2) + fab->opts_.transport.per_msg_us;
          }
          cb(Status::Ok(), std::move(resp));
        }, charge_sender);
      };
      if (shed) {
        Message rep = Message::reply(Code::kOverloaded, "admission shed");
        rep.seq = shed_hint;  // retry-after hint, µs (client.cc backoff floor)
        reply(std::move(rep));
        return;
      }
      obs::set_reactor_tag(static_cast<uint32_t>(core));
      if (obs::handle_admin(*dn->rt, req, reply)) {
        obs::set_reactor_tag(0);
        return;
      }
      obs::DispatchSpan span(*dn->rt, req);
      reply = span.wrap(std::move(reply));
      dispatch_to_service(*dn, from, std::move(req), std::move(reply));
      obs::set_reactor_tag(0);
    });
  });
}

void SimFabric::SimRuntime::send(const Addr& dst, Message msg) {
  obs::stamp_outgoing(*this, msg);
  fab_->transmit(*node_, fab_->core_of(*node_, msg), dst,
                 [fab = fab_, from = addr_,
                  msg = std::move(msg)](Node& dst_node) mutable {
    const uint64_t t = fab->queue_.now_us();
    uint64_t done = t;
    const int core = fab->core_of(dst_node, msg);
    if (!dst_node.opts.is_client) {
      uint64_t& busy = dst_node.busy[static_cast<size_t>(core)];
      const uint64_t start = std::max(t, busy);
      fab->record_queue_wait(dst_node, msg, t, start, core);
      done = start + fab->opts_.transport.per_msg_us +
             fab->proc_cost(dst_node, msg);
      busy = done;
    }
    fab->queue_.schedule_at(done, [fab, from, core, msg = std::move(msg),
                                   dst_addr = dst_node.addr]() mutable {
      Node* dn = fab->find(dst_addr);
      if (dn == nullptr || !dn->alive) return;
      Replier reply = [](Message) {};
      obs::set_reactor_tag(static_cast<uint32_t>(core));
      if (obs::handle_admin(*dn->rt, msg, reply)) {
        obs::set_reactor_tag(0);
        return;
      }
      obs::DispatchSpan span(*dn->rt, msg);
      reply = span.wrap(std::move(reply));
      dispatch_to_service(*dn, from, std::move(msg), std::move(reply));
      obs::set_reactor_tag(0);
    });
  });
}

// The sim's explicit capacity model makes queueing directly observable:
// when a traced message arrives at a busy server, the wait between arrival
// and processing start becomes a "fabric.queue" span on the receiving node.
void SimFabric::record_queue_wait(Node& dst, const Message& m,
                                  uint64_t arrival_us, uint64_t start_us,
                                  int core) {
  if (!m.trace.valid() || start_us <= arrival_us || dst.rt == nullptr) return;
  obs::Tracer& tracer = dst.rt->obs().tracer();
  obs::Span s;
  s.trace_id = m.trace.trace_id;
  s.span_id = tracer.new_span_id();
  s.parent_span_id = m.trace.span_id;
  s.name = "fabric.queue";
  s.node = dst.addr;
  s.start_us = arrival_us;
  s.end_us = start_us;
  s.hop = m.trace.hop;
  s.reactor = static_cast<uint32_t>(core);
  tracer.record(std::move(s));
}

void SimFabric::post_to(const Addr& addr, std::function<void()> fn) {
  queue_.schedule_after(0, [this, addr, fn = std::move(fn)] {
    Node* n = find(addr);
    if (n != nullptr && n->alive) fn();
  });
}

}  // namespace bespokv
