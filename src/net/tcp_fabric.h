// TcpFabric: real sockets, thread-per-core. Each node runs `reactors`
// independent epoll event loops ("reactors"), every one with its own
// SO_REUSEPORT listening socket on the node's 127.0.0.1:<port> address, its
// own connections, timers, buffer pool and outbound sockets — the kernel
// shards incoming connections across the reactors, and a connection is owned
// by exactly one reactor for its whole life. This backend exercises the
// genuine networking path — framing, partial reads/writes, connection reuse,
// peer-death detection, multi-core accept sharding — that SimFabric and
// ThreadFabric abstract away.
//
// Execution model with reactors > 1:
//   * A Service with shards() == 1 (the default) keeps the paper's fully
//     serialized controlet model: every request, timer and RPC callback runs
//     on the node's home reactor (reactor 0), whichever reactor's socket the
//     bytes arrived on; other reactors forward envelopes through a lock-free
//     MPSC inbox.
//   * A Service with shards() > 1 (e.g. ShardedDataletService) has shard k
//     pinned to reactor (k % reactors); different shards execute truly in
//     parallel and the same shard is never run concurrently.
//   * Responses are matched to the reactor that issued the call: the low
//     rpc-id bits carry the issuing reactor index, and replies ride the
//     request's inbound connection back.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "src/net/runtime.h"

namespace bespokv {

struct TcpFabricOpts {
  // Reactor (event-loop thread) count per node. 0 = use $BKV_TCP_REACTORS if
  // set, else 1. Clamped to [1, 16] — the low 4 bits of every rpc id encode
  // the issuing reactor.
  int reactors = 0;

  // Per-connection send-queue backpressure. When a connection's queued
  // unsent bytes exceed `send_hi_watermark` the reactor stops *reading* from
  // it (a request-reply stream throttles its own source) until the queue
  // drains below `send_lo_watermark`; a connection exceeding
  // `send_queue_cap` is closed as a dead/slow consumer. The cap must exceed
  // the largest single envelope (multi-MB payloads own their chunk).
  size_t send_hi_watermark = 2u << 20;    // 2 MiB: stop reading
  size_t send_lo_watermark = 512u << 10;  // 512 KiB: resume reading
  size_t send_queue_cap = 64ull << 20;    // 64 MiB: close the connection

  // Pooled write chunks kept per reactor (see src/net/buffer_pool.h).
  size_t pool_buffers = 64;
};

// Per-node network counters live in each node's metrics registry under
// "net.*" names (net.msgs_sent, net.msgs_dropped, net.bytes_sent,
// net.flushes — monotonic over the node's lifetime). `net.flushes` counts
// writev batches, so msgs_sent / flushes is the achieved coalescing factor;
// `net.msgs_dropped` counts envelopes discarded because the peer was
// unreachable or partitioned. Each reactor additionally registers
// net.r<k>.accepts / net.r<k>.wakeups / net.r<k>.stalls counters and a
// net.r<k>.queue_depth gauge (cross-reactor inbox depth), so a kStats
// snapshot exposes the per-reactor dimension. Scrape them like any other
// metric: the kStats op against the node returns the registry snapshot as
// JSON.
class TcpFabric : public Fabric {
 public:
  TcpFabric() : TcpFabric(TcpFabricOpts{}) {}
  explicit TcpFabric(TcpFabricOpts opts);
  ~TcpFabric() override;

  // `addr` must be "127.0.0.1:<port>" (or "<host>:<port>" resolvable locally).
  Runtime* add_node(const Addr& addr, std::shared_ptr<Service> svc) override;

  void kill(const Addr& addr) override;
  bool alive(const Addr& addr) const override;
  // Re-binds the node's listen sockets (SO_REUSEADDR|SO_REUSEPORT) and
  // restarts its reactors and service on fresh threads. Must not race a
  // concurrent kill().
  bool restart(const Addr& addr) override;
  // Implemented by dropping outgoing traffic to the severed peer.
  void partition(const Addr& a, const Addr& b, bool cut) override;

  void shutdown();

  // Synchronous RPC from an external thread via a hidden client node.
  Result<Message> call_sync(const Addr& dst, Message req,
                            uint64_t timeout_us = 2'000'000);

  // Picks a free loopback port (best effort) for harnesses building addrs.
  static int pick_port();

  int reactors_per_node() const { return opts_.reactors; }

 private:
  struct Node;
  struct Reactor;
  class TcpRuntime;

  Runtime* add_node_with_reactors(const Addr& addr,
                                  std::shared_ptr<Service> svc, int reactors);
  std::shared_ptr<Node> find(const Addr& addr) const;
  bool severed(const Addr& a, const Addr& b) const;

  TcpFabricOpts opts_;
  mutable std::mutex mu_;
  std::map<Addr, std::shared_ptr<Node>> nodes_;
  std::set<std::pair<Addr, Addr>> cuts_;
  std::atomic<uint64_t> next_rpc_id_{1};
  bool shut_down_ = false;
  Runtime* external_ = nullptr;
};

}  // namespace bespokv
