// TcpFabric: real sockets. Each node runs an epoll event loop on its own
// thread, binds 127.0.0.1:<port> (taken from its address string), and talks
// framed envelopes (envelope.h) to its peers. This backend exercises the
// genuine networking path — framing, partial reads/writes, connection reuse,
// peer-death detection — that SimFabric and ThreadFabric abstract away.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "src/net/runtime.h"

namespace bespokv {

// Per-node network counters live in each node's metrics registry under
// "net.*" names (net.msgs_sent, net.msgs_dropped, net.bytes_sent,
// net.flushes — monotonic over the node's lifetime). `net.flushes` counts
// writev batches, so msgs_sent / flushes is the achieved coalescing factor;
// `net.msgs_dropped` counts envelopes discarded because the peer was
// unreachable or partitioned. Scrape them like any other metric: the kStats
// op against the node returns the registry snapshot as JSON.
class TcpFabric : public Fabric {
 public:
  TcpFabric();
  ~TcpFabric() override;

  // `addr` must be "127.0.0.1:<port>" (or "<host>:<port>" resolvable locally).
  Runtime* add_node(const Addr& addr, std::shared_ptr<Service> svc) override;

  void kill(const Addr& addr) override;
  bool alive(const Addr& addr) const override;
  // Re-binds the node's listen socket (SO_REUSEADDR) and restarts its event
  // loop and service on a fresh thread. Must not race a concurrent kill().
  bool restart(const Addr& addr) override;
  // Implemented by dropping outgoing traffic to the severed peer.
  void partition(const Addr& a, const Addr& b, bool cut) override;

  void shutdown();

  // Synchronous RPC from an external thread via a hidden client node.
  Result<Message> call_sync(const Addr& dst, Message req,
                            uint64_t timeout_us = 2'000'000);

  // Picks a free loopback port (best effort) for harnesses building addrs.
  static int pick_port();

 private:
  struct Node;
  class TcpRuntime;

  std::shared_ptr<Node> find(const Addr& addr) const;
  bool severed(const Addr& a, const Addr& b) const;

  mutable std::mutex mu_;
  std::map<Addr, std::shared_ptr<Node>> nodes_;
  std::set<std::pair<Addr, Addr>> cuts_;
  std::atomic<uint64_t> next_rpc_id_{1};
  bool shut_down_ = false;
  Runtime* external_ = nullptr;
};

}  // namespace bespokv
