#include "src/net/envelope.h"

#include "src/proto/codec.h"

namespace bespokv {

void encode_envelope(const Envelope& env, std::string* out) {
  out->reserve(out->size() + 4 + 16 + env.from.size() +
               encoded_message_size_hint(env.msg));
  Encoder e(out);
  const size_t len_at = e.mark();
  e.put_u32_le(0);  // length slot, backpatched below
  e.put_varint(env.rpc_id);
  e.put_u8(static_cast<uint8_t>(env.kind));
  e.put_bytes(env.from);
  encode_message(env.msg, out);
  if (env.msg.trace.valid()) {
    // Optional tail fields after the (self-delimiting) message. Plain
    // envelopes are byte-identical to the pre-tracing wire format, and
    // decoders ignore tails they don't understand, so old and new nodes
    // interoperate.
    e.put_u8(kTraceTailTag);
    e.put_varint(env.msg.trace.trace_id);
    e.put_varint(env.msg.trace.span_id);
    e.put_u8(env.msg.trace.hop);
  }
  if (env.msg.token != 0) {
    e.put_u8(kTokenTailTag);
    e.put_varint(env.msg.token);
  }
  e.patch_u32_le(len_at, static_cast<uint32_t>(out->size() - len_at - 4));
}

void encode_envelope(const Envelope& env, ByteBuffer* out) {
  encode_envelope(env, &out->backing());
}

Status decode_envelope(std::string_view buf, Envelope* env, size_t* consumed) {
  *consumed = 0;
  if (buf.size() < 4) return Status::Ok();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf[static_cast<size_t>(i)])) << (8 * i);
  }
  if (len > 64u * 1024 * 1024) return Status::Corruption("oversized frame");
  if (buf.size() < 4 + static_cast<size_t>(len)) return Status::Ok();
  std::string_view payload = buf.substr(4, len);

  Decoder d(payload);
  auto rpc = d.varint();
  if (!rpc.ok()) return rpc.status();
  auto kind = d.u8();
  if (!kind.ok()) return kind.status();
  if (kind.value() > 2) return Status::Corruption("bad envelope kind");
  auto from = d.bytes();
  if (!from.ok()) return from.status();

  // The encoded message follows the header; it is self-delimiting, and any
  // bytes after it are optional tail fields (currently the trace context).
  // Unknown tails are skipped for forward compatibility.
  const size_t header = payload.size() - d.remaining();
  size_t msg_len = 0;
  auto msg = decode_message(payload.substr(header), &msg_len);
  if (!msg.ok()) return msg.status();

  env->rpc_id = rpc.value();
  env->kind = static_cast<EnvelopeKind>(kind.value());
  env->from = std::move(from).value();
  env->msg = std::move(msg).value();
  decode_envelope_tail(payload.substr(header + msg_len), &env->msg.trace,
                       &env->msg.token);
  *consumed = 4 + static_cast<size_t>(len);
  return Status::Ok();
}

void decode_envelope_tail(std::string_view tail, TraceContext* trace,
                          uint64_t* token) {
  *trace = TraceContext{};
  *token = 0;
  Decoder t(tail);
  while (t.remaining() > 0) {
    auto tag = t.u8();
    if (!tag.ok()) return;
    if (tag.value() == kTraceTailTag) {
      auto trace_id = t.varint();
      auto span_id = t.varint();
      auto hop = t.u8();
      if (!trace_id.ok() || !span_id.ok() || !hop.ok()) return;
      trace->trace_id = trace_id.value();
      trace->span_id = span_id.value();
      trace->hop = hop.value();
    } else if (tag.value() == kTokenTailTag) {
      auto tok = t.varint();
      if (!tok.ok()) return;
      *token = tok.value();
    } else {
      // A tail from a newer protocol revision (or garbage appended by a
      // fuzzer): fields are not self-delimiting across unknown tags, so stop
      // here — everything parsed so far stands. Never an error, to keep the
      // framing forward compatible.
      return;
    }
  }
}

}  // namespace bespokv
