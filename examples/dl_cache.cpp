// §VI-B use case: distributed cache for deep-learning training ingest.
//
// Ingesting millions of small files from a parallel file system starves
// accelerators; a bespoKV cache in front of the PFS serves the hot dataset
// from memory. This example builds the cache, populates it from a (mock)
// PFS namespace, then runs two training epochs reading every sample through
// the cache — demonstrating cache hits, misses with fill, and large-value
// handling.
//
//   $ ./dl_cache
#include <cstdio>
#include <map>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/thread_fabric.h"

using namespace bespokv;

namespace {

// Stand-in for the parallel file system: slow, authoritative object source.
class MockPfs {
 public:
  explicit MockPfs(int num_samples) {
    for (int i = 0; i < num_samples; ++i) {
      files_["/dataset/img" + std::to_string(i) + ".jpg"] =
          std::string(32 * 1024, static_cast<char>('a' + i % 26));
    }
  }
  const std::map<std::string, std::string>& files() const { return files_; }
  std::string read(const std::string& path) const {
    ++reads_;
    return files_.at(path);
  }
  mutable int reads_ = 0;

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace

int main() {
  constexpr int kSamples = 200;
  MockPfs pfs(kSamples);

  // The cache: 2 shards x 2 replicas of in-memory hash datalets.
  ClusterOptions opts;
  opts.topology = Topology::kMasterSlave;
  opts.consistency = Consistency::kEventual;
  opts.num_shards = 2;
  opts.num_replicas = 2;
  opts.datalet_kind = "tHT";

  ThreadFabric fabric;
  Cluster cluster(fabric, opts);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  SyncKv kv([&fabric](const Addr& a, Message m) { return fabric.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());

  auto fetch_sample = [&](const std::string& path) -> std::string {
    auto cached = kv.get(path, "dlcache");
    if (cached.ok()) return std::move(cached).value();
    // Cache miss: fill from the PFS.
    std::string data = pfs.read(path);
    kv.put(path, data, "dlcache");
    return data;
  };

  // Epoch 1: all misses — every sample is pulled from the PFS once.
  size_t bytes = 0;
  for (const auto& [path, _] : pfs.files()) bytes += fetch_sample(path).size();
  const int pfs_reads_epoch1 = pfs.reads_;
  std::printf("epoch 1: %d samples (%zu KiB), PFS reads = %d (all misses)\n",
              kSamples, bytes / 1024, pfs_reads_epoch1);

  // Epoch 2: the dataset is resident — zero PFS traffic.
  bytes = 0;
  for (const auto& [path, _] : pfs.files()) bytes += fetch_sample(path).size();
  std::printf("epoch 2: %d samples (%zu KiB), PFS reads = %d (served by cache)\n",
              kSamples, bytes / 1024, pfs.reads_ - pfs_reads_epoch1);

  // Sanity: a cached object round-trips byte-identically.
  const std::string probe = "/dataset/img7.jpg";
  std::printf("integrity: %s %s\n", probe.c_str(),
              kv.get(probe, "dlcache").value_or("") == pfs.read(probe)
                  ? "matches the PFS copy"
                  : "MISMATCH");
  std::printf("dl_cache example done\n");
  return 0;
}
