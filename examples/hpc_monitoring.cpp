// §VI-A use case: hierarchical/heterogeneous storage for HPC monitoring.
//
// One shard whose three replicas live in *different* engines (polyglot
// persistence, §IV-D): an LSM tree absorbs the write-heavy Lustre monitoring
// stream, a B+-tree (tMT) replica serves the read-heavy analytics model with
// range scans, and a persistent log replica keeps everything durable on
// disk. Replication is MS+EC: the monitoring collector writes once and the
// framework fans the data out to all three abstractions.
//
//   $ ./hpc_monitoring
#include <cstdio>
#include <filesystem>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/thread_fabric.h"

using namespace bespokv;

namespace {

// A monitoring sample from a Lustre server (MDS/OSS stats, §VI-A).
std::string sample_key(const char* server, int t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s/%06d", server, t);
  return buf;
}

}  // namespace

int main() {
  const std::string log_dir = "/tmp/bkv_monitoring_log";
  std::filesystem::remove_all(log_dir);

  ClusterOptions opts;
  opts.topology = Topology::kMasterSlave;
  opts.consistency = Consistency::kEventual;
  opts.num_shards = 1;
  opts.num_replicas = 3;
  // Master absorbs writes in the LSM; slave 1 is the analytics tMT replica;
  // slave 2 persists the stream in an fdatasync'd on-disk log.
  opts.replica_datalet_kinds = {"tLSM", "tMT", "tLog"};
  opts.datalet_cfg.dir = log_dir;
  opts.datalet_cfg.sync_every = 64;

  ThreadFabric fabric;
  Cluster cluster(fabric, opts);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  SyncKv kv([&fabric](const Addr& a, Message m) { return fabric.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());

  // --- Monitoring ingest: probe agents push time-series samples. ----------
  const char* servers[] = {"mds0", "oss0", "oss1", "ost3"};
  int written = 0;
  for (int t = 0; t < 500; ++t) {
    for (const char* server : servers) {
      char value[64];
      std::snprintf(value, sizeof(value), "iops=%d;bw=%dMB/s", 100 + t % 37,
                    400 + t % 111);
      if (kv.put(sample_key(server, t), value, "lustre").ok()) ++written;
    }
  }
  std::printf("monitoring: ingested %d samples from %zu servers\n", written,
              std::size(servers));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // EC fan-out

  // --- Analytics: the load balancer reads back windows of samples. --------
  // Range queries hit the tMT replica through the datalet API; here we show
  // the engine-level view the analytics model uses (§VI-A's "multifaceted
  // view on shared data").
  auto tmt = cluster.datalet(0, 1);
  auto window = tmt->scan("lustre\x1foss0/000100", "lustre\x1foss0/000110", 0);
  std::printf("analytics: scanned %zu oss0 samples from the tMT replica\n",
              window.ok() ? window.value().size() : 0);
  if (window.ok() && !window.value().empty()) {
    std::printf("  first: %s -> %s\n", window.value().front().key.c_str(),
                window.value().front().value.c_str());
  }

  // Point reads through the normal client path (served by any replica).
  auto one = kv.get(sample_key("mds0", 42), "lustre");
  std::printf("analytics: point read mds0/000042 -> %s\n",
              one.value_or("<missing>").c_str());

  // --- Durability: the log replica has everything on disk. ----------------
  std::printf("durability: log replica holds %zu records in %s\n",
              cluster.datalet(0, 2)->size(), log_dir.c_str());

  std::printf("replica engines: %s / %s / %s\n", cluster.datalet(0, 0)->kind(),
              cluster.datalet(0, 1)->kind(), cluster.datalet(0, 2)->kind());
  return 0;
}
