// Standalone deployment driver — the repository's equivalent of the paper
// artifact's `conproxy` + `slap.sh` workflow (§A): read a JSON config,
// assemble the full cluster on real TCP sockets, print the endpoints, then
// run a smoke workload (or serve until ^C with --serve).
//
//   $ ./standalone_cluster ../configs/ms_sc.json
//   $ ./standalone_cluster ../configs/aa_ec.json --serve
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/tcp_fabric.h"

using namespace bespokv;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_sigint(int) { g_stop = 1; }

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config.json> [--serve]\n", argv[0]);
    return 2;
  }
  const bool serve = argc > 2 && std::string(argv[2]) == "--serve";

  auto text = read_file(argv[1]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().to_string().c_str());
    return 1;
  }
  auto json = Json::parse(text.value());
  if (!json.ok()) {
    std::fprintf(stderr, "config parse error: %s\n",
                 json.status().to_string().c_str());
    return 1;
  }
  auto opts = ClusterOptions::from_json(json.value());
  if (!opts.ok()) {
    std::fprintf(stderr, "config error: %s\n", opts.status().to_string().c_str());
    return 1;
  }

  TcpFabric fabric;
  Cluster cluster(fabric, opts.value());
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::printf("bespoKV cluster up (real TCP on loopback)\n");
  std::printf("  coordinator : %s\n", cluster.coordinator_addr().c_str());
  std::printf("  dlm         : %s\n", cluster.dlm_addr().c_str());
  std::printf("  shared log  : %s\n", cluster.sharedlog_addr().c_str());
  for (int s = 0; s < opts.value().num_shards; ++s) {
    for (int r = 0; r < opts.value().num_replicas; ++r) {
      std::printf("  shard %d rep %d: %s (%s)\n", s, r,
                  cluster.controlet_addr(s, r).c_str(),
                  cluster.datalet(s, r)->kind());
    }
  }

  SyncKv kv([&fabric](const Addr& a, Message m) { return fabric.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());

  if (serve) {
    std::signal(SIGINT, on_sigint);
    std::printf("serving; ^C to stop\n");
    while (!g_stop) std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::printf("shutting down\n");
    return 0;
  }

  // Smoke workload over the wire.
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    if (kv.put("smoke" + std::to_string(i), "v" + std::to_string(i)).ok()) ++ok;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  int hit = 0;
  for (int i = 0; i < 200; ++i) {
    auto r = kv.get("smoke" + std::to_string(i));
    if (r.ok() && r.value() == "v" + std::to_string(i)) ++hit;
  }
  std::printf("smoke: %d/200 puts ok, %d/200 gets verified over TCP\n", ok, hit);
  return ok == 200 && hit == 200 ? 0 : 1;
}
