// §VI-C use case: metadata service for an ephemeral burst-buffer file system.
//
// A job-scoped file system needs a KV store for inode/dentry metadata that
// (a) spins up instantly on the job's compute nodes, (b) supports range
// queries for directory listings (range-partitioned tMT datalets), and
// (c) can relax consistency for checkpoint-style workloads. This example
// builds that metadata store, implements mkdir/create/readdir/stat on top of
// the KV API, and tears it down — the full ephemeral lifecycle.
//
//   $ ./burst_buffer_fs
#include <cstdio>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/thread_fabric.h"

using namespace bespokv;

namespace {

// Minimal metadata schema: one KV pair per inode, keyed by full path.
// Directory listing = range scan over "path/" prefix.
class BurstBufferMeta {
 public:
  explicit BurstBufferMeta(SyncKv kv) : kv_(std::move(kv)) {}

  Status mkdir(const std::string& path) {
    return kv_.put(path, "type=dir", "meta");
  }
  Status create(const std::string& path, size_t size) {
    return kv_.put(path, "type=file;size=" + std::to_string(size), "meta");
  }
  Result<std::string> stat(const std::string& path) {
    return kv_.get(path, "meta");
  }
  Result<std::vector<KV>> readdir(const std::string& dir) {
    // Children of /a sort in ["/a/", "/a0"): '0' is '/'+1 in ASCII.
    std::string lo = dir + "/";
    std::string hi = dir + "0";
    return kv_.scan(lo, hi, 0, "meta");
  }
  Status unlink(const std::string& path) { return kv_.del(path, "meta"); }

 private:
  SyncKv kv_;
};

}  // namespace

int main() {
  // Job prologue: instantiate the metadata store on the job's nodes. Range
  // partitioning keeps each subtree's metadata on one shard, so directory
  // listings touch a single node.
  ClusterOptions opts;
  opts.topology = Topology::kMasterSlave;
  opts.consistency = Consistency::kEventual;  // relaxed POSIX (§VI-C)
  opts.num_shards = 3;
  opts.num_replicas = 3;
  opts.datalet_kind = "tMT";  // ordered store: directory scans
  opts.partitioner = "range";
  opts.range_splits = {"meta\x1f/ckpt", "meta\x1f/output"};

  ThreadFabric fabric;
  Cluster cluster(fabric, opts);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::printf("burst-buffer metadata store up (3 range-partitioned shards)\n");

  BurstBufferMeta fs(SyncKv(
      [&fabric](const Addr& a, Message m) { return fabric.call_sync(a, std::move(m)); },
      cluster.coordinator_addr()));

  // The application writes a checkpoint: one directory, N rank files.
  fs.mkdir("/ckpt/step100");
  for (int rank = 0; rank < 16; ++rank) {
    char path[64];
    std::snprintf(path, sizeof(path), "/ckpt/step100/rank%04d", rank);
    fs.create(path, 64 * 1024 * 1024);
  }
  fs.mkdir("/output");
  fs.create("/output/results.h5", 1 * 1024 * 1024);

  auto listing = fs.readdir("/ckpt/step100");
  std::printf("readdir(/ckpt/step100): %zu entries\n",
              listing.ok() ? listing.value().size() : 0);
  if (listing.ok() && !listing.value().empty()) {
    std::printf("  %s [%s]\n", listing.value().front().key.c_str(),
                listing.value().front().value.c_str());
    std::printf("  ... %s\n", listing.value().back().key.c_str());
  }

  auto st = fs.stat("/output/results.h5");
  std::printf("stat(/output/results.h5): %s\n", st.value_or("<missing>").c_str());

  // Restart semantics: the previous checkpoint is garbage-collected.
  for (int rank = 0; rank < 8; ++rank) {
    char path[64];
    std::snprintf(path, sizeof(path), "/ckpt/step100/rank%04d", rank);
    fs.unlink(path);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  listing = fs.readdir("/ckpt/step100");
  std::printf("after GC, readdir(/ckpt/step100): %zu entries\n",
              listing.ok() ? listing.value().size() : 0);

  // Job epilogue: the whole store simply goes away with the job.
  std::printf("job done; ephemeral metadata store torn down\n");
  return 0;
}
