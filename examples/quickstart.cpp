// Quickstart: "drop a datalet in, get a distributed KV store out".
//
// Builds a 2-shard, 3-replica Master-Slave/Eventual-Consistency deployment
// of the stock tHT datalet on the real-thread fabric, then uses the client
// library for tables, puts, gets, dels and a per-request strong read.
//
//   $ ./quickstart
#include <cstdio>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/thread_fabric.h"

using namespace bespokv;

int main() {
  // 1. Describe the deployment — the programmatic equivalent of the paper's
  //    JSON config ({"topology": "ms", "consistency_model": "eventual", ...}).
  ClusterOptions opts;
  opts.topology = Topology::kMasterSlave;
  opts.consistency = Consistency::kEventual;
  opts.num_shards = 2;
  opts.num_replicas = 3;      // master + two slaves per shard
  opts.datalet_kind = "tHT";  // the single-server store being "dropped in"

  // 2. Assemble it: coordinator, DLM, shared log, and 6 controlet+datalet
  //    pairs, each node on its own thread.
  ThreadFabric fabric;
  Cluster cluster(fabric, opts);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::printf("cluster up: coordinator at %s, %d shards x %d replicas\n",
              cluster.coordinator_addr().c_str(), opts.num_shards,
              opts.num_replicas);

  // 3. Talk to it through the client library (Table II client API).
  SyncKv kv([&fabric](const Addr& a, Message m) { return fabric.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());

  if (Status s = kv.put("greeting", "hello, bespoKV"); !s.ok()) {
    std::printf("put failed: %s\n", s.to_string().c_str());
    return 1;
  }
  // This deployment is eventually consistent: give the master's asynchronous
  // propagation a beat so the read below can be served by *any* replica.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto hello = kv.get("greeting");
  std::printf("get(greeting) -> %s\n",
              hello.ok() ? hello.value().c_str() : hello.status().to_string().c_str());

  // Tables are first-class: same keys, different namespaces.
  kv.put("jupiter", "gas giant", /*table=*/"planets");
  kv.put("jupiter", "roman king of gods", /*table=*/"mythology");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::printf("planets/jupiter   -> %s\n", kv.get("jupiter", "planets").value_or("?").c_str());
  std::printf("mythology/jupiter -> %s\n", kv.get("jupiter", "mythology").value_or("?").c_str());

  // Per-request consistency (§IV-C): this read goes to the master, which has
  // every acknowledged write, instead of a possibly-lagging slave.
  auto strong = kv.get("greeting", "", ConsistencyLevel::kStrong);
  std::printf("strong get(greeting) -> %s\n", strong.value_or("?").c_str());

  // Deletes propagate like writes.
  kv.del("greeting");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::printf("after del, get(greeting) -> %s\n",
              kv.get("greeting").status().to_string().c_str());

  std::printf("quickstart done\n");
  return 0;
}
