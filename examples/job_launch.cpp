// §VI-E / §II use case: resource & process management with on-line topology
// adaptation.
//
// A job-launch service stores launch descriptors and per-rank status in
// bespoKV. While the workload runs on a single cluster, simple Master-Slave
// suffices; when the job spans additional clusters (geo-distribution), the
// deployment is switched *live* to Active-Active so every site takes writes
// locally — the §V transition, with no downtime and no data migration.
//
//   $ ./job_launch
#include <cstdio>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/thread_fabric.h"

using namespace bespokv;

int main() {
  ClusterOptions opts;
  opts.topology = Topology::kMasterSlave;
  opts.consistency = Consistency::kEventual;
  opts.num_shards = 2;
  opts.num_replicas = 3;

  ThreadFabric fabric;
  Cluster cluster(fabric, opts);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  SyncKv kv([&fabric](const Addr& a, Message m) { return fabric.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());

  // Phase 1: single-cluster job launch under MS.
  kv.put("job42/launch", "nodes=128;binary=/apps/hacc", "jobs");
  for (int rank = 0; rank < 128; ++rank) {
    kv.put("job42/rank" + std::to_string(rank), "RUNNING", "jobs");
  }
  std::printf("phase 1 (MS+EC): job 42 launched, 128 ranks registered\n");
  auto desc = kv.get("job42/launch", "jobs");
  std::printf("  launch descriptor: %s\n", desc.value_or("?").c_str());

  // Phase 2: the job scales out to a second cluster — switch to AA so both
  // sites' launch daemons write locally (§II: "AA topology may become more
  // beneficial as we scale out to multiple clusters").
  bool accepted = false;
  cluster.start_transition(Topology::kActiveActive, Consistency::kEventual,
                           [&](Status s) { accepted = s.ok(); });
  for (int i = 0; i < 100 && (!accepted ||
       cluster.coordinator_service()->transition_active()); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("phase 2: live transition to AA+EC %s\n",
              cluster.coordinator_service()->shard_map().topology ==
                      Topology::kActiveActive
                  ? "complete"
                  : "FAILED");

  // Both "sites" (clients hitting different actives) update rank states.
  kv.refresh();
  int updated = 0;
  for (int rank = 0; rank < 128; ++rank) {
    if (kv.put("job42/rank" + std::to_string(rank),
               rank % 2 ? "SITE_A_DONE" : "SITE_B_DONE", "jobs")
            .ok()) {
      ++updated;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::printf("  %d rank updates accepted under AA; pre-transition data intact: %s\n",
              updated,
              kv.get("job42/launch", "jobs").ok() ? "yes" : "NO");

  // Monitoring view: poll a few rank states.
  for (int rank : {0, 1, 127}) {
    std::printf("  job42/rank%d = %s\n", rank,
                kv.get("job42/rank" + std::to_string(rank), "jobs")
                    .value_or("?")
                    .c_str());
  }
  std::printf("job-launch example done\n");
  return 0;
}
