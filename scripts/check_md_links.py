#!/usr/bin/env python3
"""Fail on dead intra-repo links in the repo's markdown files.

Checks every [text](target) and bare reference in *.md whose target is a
relative path (optionally with a #fragment). External links (http/https/
mailto) and pure #fragment self-links are ignored; path targets are resolved
against the file's directory and must exist in the working tree. Exit 1 with
a per-link report if any target is missing.
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".github"}  # .github: workflow docs link to runs
# Retrieval artifacts quoting other repos' docs verbatim — their relative
# links point into trees we do not vendor.
SKIP_FILES = {"SNIPPETS.md", "PAPERS.md"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target_path))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    errors.append(f"{rel}:{lineno}: dead link -> {target}")
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    all_errors = []
    count = 0
    for path in sorted(md_files(root)):
        count += 1
        all_errors.extend(check_file(path, root))
    for err in all_errors:
        print(err)
    print(f"checked {count} markdown files, {len(all_errors)} dead links")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
